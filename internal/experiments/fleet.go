package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"plinius/internal/core"
	"plinius/internal/enclave"
	"plinius/internal/fleet"
	"plinius/internal/mnist"
	"plinius/internal/obs"
)

// Multi-host serving experiment: the fleet answer to a model that no
// single serving host can hold resident. The same over-EPC model is
// served three ways:
//
//   - monolithic: one whole-model replica on one host. The footprint
//     overcommits the host, so every batch pays page faults — the knee.
//   - sharded: a single-host core.ShardGroup pipeline. It stays under
//     the knee by parking shards and streaming their layer ranges back
//     from PM per scheduled batch — zero faults, but every batch pays
//     PM range restores.
//   - fleet: the shard plan bin-packed across N hosts by the placement
//     planner. Every shard is resident on its own host, so batches pay
//     neither faults nor steady-state restores; stage hand-offs cross
//     attested inter-host channels instead.
//
// The headline: the fleet serves the over-EPC model with zero paging
// faults AND zero steady-state PM restores, trading them for sealed
// activation hand-offs on the wire.

// FleetRow is one serving mode's measurement.
type FleetRow struct {
	// Mode is "monolithic", "sharded" or "fleet".
	Mode string `json:"mode"`
	// Hosts is the number of serving hosts the mode spans; Shards the
	// pipeline depth; Groups the replica-group count (fleet only);
	// Window the in-flight batch capacity.
	Hosts  int `json:"hosts"`
	Shards int `json:"shards"`
	Groups int `json:"groups"`
	Window int `json:"window"`
	// Streaming reports PM-streaming residency.
	Streaming bool `json:"streaming"`
	// PeakResidentBytes is the worst host's working-set high-water
	// mark; OverEPC whether any host exceeded its usable budget.
	PeakResidentBytes int  `json:"peak_resident_bytes"`
	OverEPC           bool `json:"over_epc"`
	// RestoreFaults is the page-fault cost of bringing the mode up;
	// ServeFaults the faults across the batch run, summed over hosts.
	RestoreFaults uint64 `json:"restore_faults"`
	ServeFaults   uint64 `json:"serve_faults"`
	// PMRestores counts layer-range restores from PM during the run.
	PMRestores uint64 `json:"pm_restores"`
	// Handoffs and HandoffBytes count sealed activation hand-offs
	// carried across attested inter-host channels (fleet only);
	// Channels is how many such channels the placement needed.
	Handoffs     uint64 `json:"handoffs"`
	HandoffBytes uint64 `json:"handoff_bytes"`
	Channels     int    `json:"channels"`
	// WallMs is the batch run's wall clock; Throughput its images/s.
	WallMs     float64 `json:"wall_ms"`
	Throughput float64 `json:"images_per_sec"`
}

// FleetResult holds one multi-host serving comparison, shaped for the
// BENCH_fleet.json snapshot.
type FleetResult struct {
	Server     string `json:"server"`
	ModelBytes int    `json:"model_bytes"`
	// HostEPC is each serving host's usable-EPC budget — smaller than
	// the model, so no single host can hold it resident.
	HostEPC    int        `json:"host_epc_bytes"`
	FleetHosts int        `json:"fleet_hosts"`
	Batch      int        `json:"batch"`
	Batches    int        `json:"batches"`
	Rows       []FleetRow `json:"rows"`
	// Speedup is fleet throughput over the single-host sharded
	// baseline's — the dividend of residency bought with more hosts.
	Speedup float64 `json:"fleet_speedup_vs_sharded_x"`
	// HostReports is the fleet's per-host placement and load view.
	HostReports []fleet.HostReport `json:"fleet_host_reports"`
	// Metrics is the flattened fabric registry at the end of the fleet
	// run (fleet_handoff_* counters, router depth, per-host headroom,
	// per-group shard series).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// RunFleet serves a sizeMB-parameter model — sized past any single
// host's usable EPC of epcMB — monolithically, sharded on one host, and
// across a numHosts fleet, and measures what each mode pays. epcMB <= 0
// uses the paper's 93.5 MB budget (pair it with sizeMB ~2x that);
// numHosts <= 0 uses 3.
func RunFleet(server core.ServerProfile, sizeMB, epcMB, numHosts, batches, batch int, seed int64) (FleetResult, error) {
	if sizeMB <= 0 {
		sizeMB = 187 // ~2x the usable EPC
	}
	epcBytes := enclave.UsableEPC
	if epcMB > 0 {
		epcBytes = epcMB << 20
	}
	if numHosts <= 0 {
		numHosts = 3
	}
	if batches <= 0 {
		batches = 4
	}
	if batch <= 0 {
		batch = 1
	}
	cfgText, err := core.SyntheticModelConfig(sizeMB << 20)
	if err != nil {
		return FleetResult{}, err
	}
	f, err := core.New(core.Config{
		ModelConfig:        cfgText,
		Server:             server,
		PMBytes:            (sizeMB*5/2 + 48) << 20,
		Seed:               seed,
		TrainOverheadBytes: 1 << 20,
	})
	if err != nil {
		return FleetResult{}, err
	}
	res := FleetResult{
		Server:     server.Name,
		ModelBytes: f.Net.ParamBytes(),
		HostEPC:    epcBytes,
		FleetHosts: numHosts,
		Batch:      batch,
		Batches:    batches,
	}
	images := mnist.Synthetic(batch*batches, seed).Images
	in := f.Net.InputSize()

	// run drives the batch pipeline at full window and fills the shared
	// timing columns.
	run := func(row *FleetRow, window int, classify func(context.Context, []float32) ([]int, error)) error {
		sem := make(chan struct{}, window)
		var (
			wg       sync.WaitGroup
			errMu    sync.Mutex
			batchErr error
		)
		start := time.Now()
		for b := 0; b < batches; b++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(b int) {
				defer wg.Done()
				defer func() { <-sem }()
				_, err := classify(context.Background(), images[b*batch*in:(b+1)*batch*in])
				if err != nil {
					errMu.Lock()
					if batchErr == nil {
						batchErr = fmt.Errorf("%s batch %d: %w", row.Mode, b, err)
					}
					errMu.Unlock()
				}
			}(b)
		}
		wg.Wait()
		if batchErr != nil {
			return batchErr
		}
		wall := time.Since(start)
		row.WallMs = float64(wall.Microseconds()) / 1e3
		if secs := wall.Seconds(); secs > 0 {
			row.Throughput = float64(batch*batches) / secs
		}
		return nil
	}

	// Monolithic: one whole-model replica on a single over-committed host.
	monoHost := enclave.NewHost(server.Enclave, enclave.WithHostEPC(epcBytes))
	rep, err := f.NewReplicaOn(monoHost, seed+1)
	if err != nil {
		return FleetResult{}, fmt.Errorf("monolithic replica: %w", err)
	}
	mono := FleetRow{Mode: "monolithic", Hosts: 1, Shards: 1, Groups: 1, Window: 1}
	mono.RestoreFaults = monoHost.Stats().PageSwaps
	if err := run(&mono, 1, func(_ context.Context, batchImages []float32) ([]int, error) {
		return rep.ClassifyBatch(batchImages)
	}); err != nil {
		return FleetResult{}, err
	}
	hs := monoHost.Stats()
	mono.ServeFaults = hs.PageSwaps - mono.RestoreFaults
	mono.PeakResidentBytes = hs.PeakResidentBytes
	mono.OverEPC = monoHost.OverEPC()
	if err := rep.Close(); err != nil {
		return FleetResult{}, err
	}
	res.Rows = append(res.Rows, mono)

	// Sharded: the single-host streaming baseline.
	shardHost := enclave.NewHost(server.Enclave, enclave.WithHostEPC(epcBytes))
	g, err := f.NewShardGroup(core.ShardOptions{
		Host:          shardHost,
		Batch:         batch,
		OverheadBytes: 64 << 10,
		Seed:          seed + 100,
	})
	if err != nil {
		return FleetResult{}, fmt.Errorf("shard group: %w", err)
	}
	sharded := FleetRow{
		Mode: "sharded", Hosts: 1, Shards: g.Shards(), Groups: 1,
		Window: g.Window(), Streaming: g.Streaming(),
	}
	sharded.RestoreFaults = shardHost.Stats().PageSwaps
	if err := run(&sharded, g.Window(), g.ClassifyBatchCtx); err != nil {
		return FleetResult{}, err
	}
	hs = shardHost.Stats()
	sharded.ServeFaults = hs.PageSwaps - sharded.RestoreFaults
	sharded.PeakResidentBytes = hs.PeakResidentBytes
	sharded.OverEPC = hs.PeakResidentBytes > epcBytes
	sharded.PMRestores = g.Restores()
	if err := g.Close(); err != nil {
		return FleetResult{}, err
	}
	res.Rows = append(res.Rows, sharded)

	// Fleet: the shard plan bin-packed across numHosts identical hosts.
	hosts := make([]*enclave.Host, numHosts)
	for i := range hosts {
		hosts[i] = enclave.NewHost(server.Enclave, enclave.WithHostEPC(epcBytes))
	}
	reg := obs.NewRegistry()
	fl, err := fleet.New(f, fleet.Options{
		Hosts:         hosts,
		Batch:         batch,
		OverheadBytes: 64 << 10,
		Seed:          seed + 200,
		Metrics:       reg,
	})
	if err != nil {
		return FleetResult{}, fmt.Errorf("fleet: %w", err)
	}
	var buildFaults uint64
	for _, h := range hosts {
		buildFaults += h.Stats().PageSwaps
	}
	startRestores := fl.Restores()
	fleetRow := FleetRow{
		Mode: "fleet", Hosts: numHosts, Shards: fl.Shards(),
		Groups: fl.Groups(), Window: fl.Window(),
		Streaming: fl.Streaming(), RestoreFaults: buildFaults,
	}
	if err := run(&fleetRow, fl.Window(), fl.ClassifyBatchCtx); err != nil {
		return FleetResult{}, err
	}
	var serveFaults uint64
	peak := 0
	overEPC := false
	for _, h := range hosts {
		st := h.Stats()
		serveFaults += st.PageSwaps
		if st.PeakResidentBytes > peak {
			peak = st.PeakResidentBytes
		}
		if h.OverEPC() {
			overEPC = true
		}
	}
	fleetRow.ServeFaults = serveFaults - buildFaults
	fleetRow.PeakResidentBytes = peak
	fleetRow.OverEPC = overEPC
	fleetRow.PMRestores = fl.Restores() - startRestores
	fleetRow.Handoffs = fl.HandoffTransfers()
	fleetRow.HandoffBytes = fl.HandoffBytes()
	fleetRow.Channels = fl.Channels()
	res.HostReports = fl.HostReports()
	res.Metrics = obs.Flatten(reg)
	if err := fl.Close(); err != nil {
		return FleetResult{}, err
	}
	res.Rows = append(res.Rows, fleetRow)

	if sharded.Throughput > 0 {
		res.Speedup = fleetRow.Throughput / sharded.Throughput
	}
	return res, nil
}

// Print renders the comparison.
func (r FleetResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Multi-host serving — %s: %.0f MB model, %.1f MB hosts, fleet of %d (batch %d x %d)\n",
		r.Server, mbOf(r.ModelBytes), mbOf(r.HostEPC), r.FleetHosts, r.Batch, r.Batches)
	tw := newTable(w)
	fmt.Fprintln(tw, "mode\thosts\tshards\tgroups\twindow\tpeak(MB)\trestore-faults\tserve-faults\tPM-restores\thandoffs\thandoff(KB)\twall(ms)\timg/s\tregime")
	for _, row := range r.Rows {
		regime := "resident"
		switch {
		case row.OverEPC:
			regime = "over knee"
		case row.Streaming:
			regime = "streams PM"
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%.1f\t%d\t%d\t%d\t%d\t%.1f\t%.1f\t%.0f\t%s\n",
			row.Mode, row.Hosts, row.Shards, row.Groups, row.Window,
			mbOf(row.PeakResidentBytes), row.RestoreFaults, row.ServeFaults,
			row.PMRestores, row.Handoffs, float64(row.HandoffBytes)/(1<<10),
			row.WallMs, row.Throughput, regime)
	}
	tw.Flush()
	if r.Speedup > 0 {
		fmt.Fprintf(w, "fleet throughput %.2fx the single-host sharded baseline\n", r.Speedup)
	}
	for _, hr := range r.HostReports {
		fmt.Fprintf(w, "host %d: resident %.1f MB / %.1f MB EPC (pressure %.2f), %d faults, shards %v\n",
			hr.Host, mbOf(hr.ResidentBytes), mbOf(hr.UsableEPC), hr.EPCPressure, hr.PageSwaps, hr.Shards)
	}
}
