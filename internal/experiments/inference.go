package experiments

import (
	"fmt"
	"io"

	"plinius/internal/core"
	"plinius/internal/darknet"
	"plinius/internal/mnist"
)

// InferenceResult holds the secure-inference experiment (paper §VI):
// train a CNN, then classify the held-out test set inside the enclave.
// The paper's 12-layer model reaches 98.52% on real MNIST; the
// reproduction trains a scaled CNN on synthetic digits.
type InferenceResult struct {
	TrainSamples int
	TestSamples  int
	Iterations   int
	Accuracy     float64
}

// InferenceConfig parameterises the experiment.
type InferenceConfig struct {
	Server     core.ServerProfile
	ConvLayers int
	Filters    int
	Batch      int
	Iters      int
	Train      int
	Test       int
	Seed       int64
}

func (c *InferenceConfig) setDefaults() {
	if c.Server.Name == "" {
		c.Server = core.EmlSGXPM()
	}
	if c.ConvLayers == 0 {
		c.ConvLayers = 2
	}
	if c.Filters == 0 {
		c.Filters = 8
	}
	if c.Batch == 0 {
		c.Batch = 64
	}
	if c.Iters == 0 {
		c.Iters = 150
	}
	if c.Train == 0 {
		c.Train = 1500
	}
	if c.Test == 0 {
		c.Test = 500
	}
}

// RunInference trains and evaluates the secure-inference pipeline.
func RunInference(cfg InferenceConfig) (InferenceResult, error) {
	cfg.setDefaults()
	full := mnist.Synthetic(cfg.Train+cfg.Test, cfg.Seed)
	train, test, err := full.Split(cfg.Train)
	if err != nil {
		return InferenceResult{}, err
	}
	f, err := core.New(core.Config{
		ModelConfig: darknet.MNISTConfig(cfg.ConvLayers, cfg.Filters, cfg.Batch),
		Server:      cfg.Server,
		PMBytes:     128 << 20,
		Seed:        cfg.Seed,
	})
	if err != nil {
		return InferenceResult{}, err
	}
	if err := f.LoadDataset(train); err != nil {
		return InferenceResult{}, err
	}
	if err := f.TrainIters(cfg.Iters, nil); err != nil {
		return InferenceResult{}, fmt.Errorf("inference training: %w", err)
	}
	acc, err := f.Infer(test)
	if err != nil {
		return InferenceResult{}, err
	}
	return InferenceResult{
		TrainSamples: train.N,
		TestSamples:  test.N,
		Iterations:   cfg.Iters,
		Accuracy:     acc,
	}, nil
}

// Print renders the result.
func (r InferenceResult) Print(w io.Writer) {
	fmt.Fprintln(w, "§VI secure inference")
	tw := newTable(w)
	fmt.Fprintln(tw, "train\ttest\titerations\taccuracy")
	fmt.Fprintf(tw, "%d\t%d\t%d\t%.2f%%\n", r.TrainSamples, r.TestSamples, r.Iterations, 100*r.Accuracy)
	tw.Flush()
}
