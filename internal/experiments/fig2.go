package experiments

import (
	"fmt"
	"io"

	"plinius/internal/storage"
)

// Fig2Result holds the storage characterisation grid (paper Fig. 2):
// throughput for sequential/random reads/writes on SSD, PM(DAX) and
// ramdisk at 1-8 threads.
type Fig2Result struct {
	ByDevice map[string][]storage.FIOResult
	Threads  []int
}

// RunFig2 runs the FIO-style characterisation. The paper uses 512 MB
// per thread and 4 KB blocks; fileMB scales the per-thread file for
// faster runs without changing per-op costs.
func RunFig2(threads []int, fileMB int) (Fig2Result, error) {
	if len(threads) == 0 {
		threads = []int{1, 2, 4, 8}
	}
	if fileMB <= 0 {
		fileMB = 512
	}
	res := Fig2Result{ByDevice: make(map[string][]storage.FIOResult), Threads: threads}
	for _, prof := range []storage.Profile{storage.SSDProfile(), storage.PMDaxProfile(), storage.RamdiskProfile()} {
		for _, pat := range []storage.FIOPattern{storage.RandomRead, storage.SequentialRead, storage.RandomWrite, storage.SequentialWrite} {
			for _, th := range threads {
				cfg := storage.FIOConfig{Pattern: pat, Threads: th, BlockSize: 4096, FileSize: fileMB << 20}
				r, err := storage.RunFIO(prof, cfg)
				if err != nil {
					return Fig2Result{}, fmt.Errorf("fig2 %s/%s: %w", prof.Name, pat, err)
				}
				res.ByDevice[prof.Name] = append(res.ByDevice[prof.Name], r)
			}
		}
	}
	return res, nil
}

// Print renders the Fig. 2 panels as throughput tables (GB/s).
func (r Fig2Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig. 2 — storage throughput (GB/s), 4 KB blocks, fsync per written block")
	tw := newTable(w)
	fmt.Fprintf(tw, "device\tpattern")
	for _, th := range r.Threads {
		fmt.Fprintf(tw, "\t%d thr", th)
	}
	fmt.Fprintln(tw)
	for _, dev := range []string{"ssd-ext4", "pm-ext4-dax", "ramdisk-tmpfs"} {
		rows := r.ByDevice[dev]
		perPattern := len(r.Threads)
		for pi, pat := range []string{"rand-read", "seq-read", "rand-write", "seq-write"} {
			fmt.Fprintf(tw, "%s\t%s", dev, pat)
			for ti := range r.Threads {
				fmt.Fprintf(tw, "\t%.3f", rows[pi*perPattern+ti].ThroughputGBps)
			}
			fmt.Fprintln(tw)
		}
	}
	tw.Flush()
}
