package experiments

import (
	"fmt"
	"io"
	"runtime"

	"plinius/internal/core"
	"plinius/internal/enclave"
)

// Co-located-enclaves experiment: the shared-EPC extension of Fig. 7.
// The paper measures the paging knee with one enclave owning the whole
// 93.5 MB usable EPC; real SGX shares one EPC per host, so several
// enclaves each comfortably under the budget hit the same knee once
// their joint working set crosses it. The sweep places 1..N identical
// Plinius frameworks on one host and measures tenant 0's mirror save:
// with a model sized so a single tenant fits, the save is paging-free
// alone and pays the full all-miss fault stream as soon as a second
// tenant arrives — the knee moved from "my footprint > 93.5 MB" to
// "our footprint > 93.5 MB".

// ColocRow is one tenant-count point of the sweep.
type ColocRow struct {
	// Tenants is the number of co-located frameworks on the host.
	Tenants int
	// PerEnclaveBytes is each tenant's enclave working set.
	PerEnclaveBytes int
	// HostResidentBytes is the host's aggregate working set.
	HostResidentBytes int
	// EachUnderEPC: every tenant alone fits the usable EPC.
	EachUnderEPC bool
	// HostOverEPC: the tenants jointly overcommit it.
	HostOverEPC bool
	// MirrorSave is tenant 0's mean save breakdown at this occupancy.
	MirrorSave core.StepTiming
	// SavePageSwaps is the mean page faults tenant 0 paid per save.
	SavePageSwaps uint64
	// ContentionSwaps is the subset of SavePageSwaps paid while tenant
	// 0's own footprint was under the budget — co-location damage.
	ContentionSwaps uint64
}

// ColocResult holds one server's co-location sweep.
type ColocResult struct {
	Server    string
	UsableEPC int
	Rows      []ColocRow
}

// RunColoc sweeps host occupancy from 1 to maxTenants frameworks, each
// training a sizeMB-parameter model, and measures tenant 0's mirror
// save at every occupancy. Choose sizeMB so one tenant is under the
// usable EPC and two are over (e.g. 56 with the default 15 MB
// overhead) to see the shared knee appear at two tenants.
func RunColoc(server core.ServerProfile, sizeMB, maxTenants, reps int, seed int64) (ColocResult, error) {
	if sizeMB <= 0 {
		sizeMB = 56
	}
	if maxTenants <= 0 {
		maxTenants = 3
	}
	if reps <= 0 {
		reps = 3
	}
	res := ColocResult{Server: server.Name, UsableEPC: enclave.UsableEPC}
	for tenants := 1; tenants <= maxTenants; tenants++ {
		row, err := runColocPoint(server, sizeMB, tenants, reps, seed)
		if err != nil {
			return ColocResult{}, fmt.Errorf("coloc %s x%d: %w", server.Name, tenants, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func runColocPoint(server core.ServerProfile, sizeMB, tenants, reps int, seed int64) (ColocRow, error) {
	cfgText, err := core.SyntheticModelConfig(sizeMB << 20)
	if err != nil {
		return ColocRow{}, err
	}
	host := enclave.NewHost(server.Enclave)
	pmBytes := (sizeMB*5/2 + 48) << 20
	fws := make([]*core.Framework, tenants)
	for i := range fws {
		f, err := core.New(core.Config{
			ModelConfig: cfgText,
			Server:      server,
			Host:        host,
			PMBytes:     pmBytes,
			Seed:        seed + int64(i),
		})
		if err != nil {
			return ColocRow{}, fmt.Errorf("tenant %d: %w", i, err)
		}
		fws[i] = f
	}
	f0 := fws[0]
	per := f0.Enclave.Footprint()
	row := ColocRow{
		Tenants:           tenants,
		PerEnclaveBytes:   per,
		HostResidentBytes: host.Resident(),
		EachUnderEPC:      per <= enclave.UsableEPC,
		HostOverEPC:       host.OverEPC(),
	}
	s0 := f0.Enclave.Stats()
	for i := 0; i < reps; i++ {
		runtime.GC()
		st, err := f0.MirrorSave()
		if err != nil {
			return ColocRow{}, fmt.Errorf("mirror save: %w", err)
		}
		row.MirrorSave = addTiming(row.MirrorSave, st)
	}
	s1 := f0.Enclave.Stats()
	row.MirrorSave = divTiming(row.MirrorSave, reps)
	row.SavePageSwaps = (s1.PageSwaps - s0.PageSwaps) / uint64(reps)
	row.ContentionSwaps = (s1.ContentionSwaps - s0.ContentionSwaps) / uint64(reps)
	return row, nil
}

// Print renders the sweep: save latency and fault volume per occupancy.
func (r ColocResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Co-located enclaves — %s: shared-EPC knee (usable %.1f MB)\n",
		r.Server, mbOf(r.UsableEPC))
	tw := newTable(w)
	fmt.Fprintln(tw, "tenants\teach(MB)\thost(MB)\tEncrypt(ms)\tWrite(ms)\tswaps/save\tcontention\tregime")
	for _, row := range r.Rows {
		regime := "fits"
		switch {
		case row.HostOverEPC && row.EachUnderEPC:
			regime = "shared knee"
		case row.HostOverEPC:
			regime = "private knee"
		}
		fmt.Fprintf(tw, "%d\t%.0f\t%.0f\t%s\t%s\t%d\t%d\t%s\n",
			row.Tenants, mbOf(row.PerEnclaveBytes), mbOf(row.HostResidentBytes),
			ms(row.MirrorSave.Encrypt), ms(row.MirrorSave.Write),
			row.SavePageSwaps, row.ContentionSwaps, regime)
	}
	tw.Flush()
}
