package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"plinius/internal/core"
	"plinius/internal/darknet"
	"plinius/internal/mnist"
)

// Fig9Result holds the crash-resilience experiment (paper Fig. 9):
// training loss curves with random crash/resume cycles for the
// crash-resilient system (mirroring on) and the non-resilient baseline
// (mirroring off, restart from scratch).
type Fig9Result struct {
	// Baseline is the no-crash loss curve, indexed by iteration.
	Baseline []float32
	// Resilient is the loss curve with crashes; same index space
	// because recovery resumes at the mirrored iteration.
	Resilient []float32
	// CrashIters are the iterations at which crashes were injected.
	CrashIters []int
	// NonResilient is the loss per executed iteration counted from the
	// start of the job; restarts re-learn from scratch, so its length
	// exceeds the target (the paper's >1000 for a 500-iteration job).
	NonResilient []float32
	// NonResilientTotal is the total executed iterations the
	// non-resilient run needed to finish the target.
	NonResilientTotal int
}

// Fig9Config parameterises the experiment.
type Fig9Config struct {
	Server     core.ServerProfile
	Iters      int
	Crashes    int
	ConvLayers int
	Filters    int
	Batch      int
	Dataset    int
	Seed       int64
}

func (c *Fig9Config) setDefaults() {
	if c.Server.Name == "" {
		c.Server = core.EmlSGXPM() // the paper reports Fig. 9 on emlSGX-PM
	}
	if c.Iters == 0 {
		c.Iters = 100
	}
	if c.Crashes == 0 {
		c.Crashes = 4
	}
	if c.ConvLayers == 0 {
		// The paper uses 5 conv layers; 3 wider layers learn visibly
		// within the scaled iteration budget of the pure-Go CNN.
		c.ConvLayers = 3
	}
	if c.Filters == 0 {
		c.Filters = 8
	}
	if c.Batch == 0 {
		c.Batch = 32
	}
	if c.Dataset == 0 {
		c.Dataset = 512
	}
}

// RunFig9 trains three runs: a no-crash baseline, a crash-resilient run
// with random crash/recover cycles, and a non-resilient run crashed at
// the same global steps.
func RunFig9(cfg Fig9Config) (Fig9Result, error) {
	cfg.setDefaults()
	ds := mnist.Synthetic(cfg.Dataset, cfg.Seed)
	modelCfg := darknet.MNISTConfig(cfg.ConvLayers, cfg.Filters, cfg.Batch)

	// Crash points: distinct iterations in the middle 80% of the run.
	rng := rand.New(rand.NewSource(cfg.Seed + 77))
	crashSet := map[int]bool{}
	for len(crashSet) < cfg.Crashes {
		crashSet[cfg.Iters/10+rng.Intn(cfg.Iters*8/10)] = true
	}
	var crashIters []int
	for it := range crashSet {
		crashIters = append(crashIters, it)
	}
	sort.Ints(crashIters)

	res := Fig9Result{CrashIters: crashIters}

	// Baseline: no crashes.
	baseline, err := newFig9Framework(modelCfg, cfg, 1)
	if err != nil {
		return Fig9Result{}, err
	}
	if err := baseline.LoadDataset(ds); err != nil {
		return Fig9Result{}, err
	}
	res.Baseline = make([]float32, 0, cfg.Iters)
	if err := baseline.TrainIters(cfg.Iters, func(_ int, l float32) {
		res.Baseline = append(res.Baseline, l)
	}); err != nil {
		return Fig9Result{}, fmt.Errorf("fig9 baseline: %w", err)
	}

	// Crash-resilient run.
	resilient, err := newFig9Framework(modelCfg, cfg, 1)
	if err != nil {
		return Fig9Result{}, err
	}
	if err := resilient.LoadDataset(ds); err != nil {
		return Fig9Result{}, err
	}
	res.Resilient = make([]float32, 0, cfg.Iters)
	record := func(_ int, l float32) { res.Resilient = append(res.Resilient, l) }
	for _, crashAt := range crashIters {
		if err := resilient.TrainIters(crashAt, record); err != nil {
			return Fig9Result{}, fmt.Errorf("fig9 resilient: %w", err)
		}
		resilient.Crash()
		if err := resilient.Recover(true); err != nil {
			return Fig9Result{}, fmt.Errorf("fig9 resilient recover: %w", err)
		}
	}
	if err := resilient.TrainIters(cfg.Iters, record); err != nil {
		return Fig9Result{}, fmt.Errorf("fig9 resilient tail: %w", err)
	}

	// Non-resilient run: mirroring disabled, crashed at the same global
	// steps; every restart begins from random weights.
	fresh, err := newFig9Framework(modelCfg, cfg, -1)
	if err != nil {
		return Fig9Result{}, err
	}
	if err := fresh.LoadDataset(ds); err != nil {
		return Fig9Result{}, err
	}
	global := 0
	recordFresh := func(_ int, l float32) {
		res.NonResilient = append(res.NonResilient, l)
		global++
	}
	for _, crashAt := range crashIters {
		// Train until the global step count reaches the crash point.
		need := crashAt - global
		if need > 0 {
			if err := fresh.TrainIters(fresh.Iteration()+need, recordFresh); err != nil {
				return Fig9Result{}, fmt.Errorf("fig9 non-resilient: %w", err)
			}
		}
		fresh.Crash()
		if err := fresh.Recover(true); err != nil {
			return Fig9Result{}, fmt.Errorf("fig9 non-resilient recover: %w", err)
		}
	}
	// Final segment: the model still needs the full cfg.Iters from its
	// last restart.
	if err := fresh.TrainIters(cfg.Iters, recordFresh); err != nil {
		return Fig9Result{}, fmt.Errorf("fig9 non-resilient tail: %w", err)
	}
	res.NonResilientTotal = global
	return res, nil
}

func newFig9Framework(modelCfg string, cfg Fig9Config, mirrorFreq int) (*core.Framework, error) {
	return core.New(core.Config{
		ModelConfig: modelCfg,
		Server:      cfg.Server,
		PMBytes:     64 << 20,
		MirrorFreq:  mirrorFreq,
		Seed:        cfg.Seed,
	})
}

// Print renders summary statistics of the three curves.
func (r Fig9Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig. 9 — crash resilience (loss curves)")
	tw := newTable(w)
	fmt.Fprintln(tw, "run\titerations\tfirst loss\tlast loss\tcrashes")
	if len(r.Baseline) > 0 {
		fmt.Fprintf(tw, "no crash\t%d\t%.3f\t%.3f\t0\n", len(r.Baseline), r.Baseline[0], r.Baseline[len(r.Baseline)-1])
	}
	if len(r.Resilient) > 0 {
		fmt.Fprintf(tw, "crash resilient\t%d\t%.3f\t%.3f\t%d\n", len(r.Resilient), r.Resilient[0], r.Resilient[len(r.Resilient)-1], len(r.CrashIters))
	}
	if len(r.NonResilient) > 0 {
		fmt.Fprintf(tw, "non-resilient\t%d\t%.3f\t%.3f\t%d\n", r.NonResilientTotal, r.NonResilient[0], r.NonResilient[len(r.NonResilient)-1], len(r.CrashIters))
	}
	tw.Flush()
	fmt.Fprintf(w, "crash points: %v\n", r.CrashIters)
}
