package experiments

import (
	"strings"
	"testing"

	"plinius/internal/core"
)

// TestChaosZeroDropsAndRecovery: the acceptance table for the chaos
// experiment at quick scale. Killing 1 of 3 hosts under sustained load
// (with periodic injected channel drops) must drop zero requests,
// trigger eviction + replan, serve the outage degraded (the survivors
// cannot hold the 6 MB model resident in 2 x 4 MB), and — after the
// rejoin — promote back to the original resident placement.
func TestChaosZeroDropsAndRecovery(t *testing.T) {
	res, err := RunChaos(core.SGXEmlPM(), 6, 4, 3, 18, 1, 42)
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	if res.DroppedRequests != 0 {
		t.Fatalf("dropped %d of %d requests across the host kill", res.DroppedRequests, res.AcceptedRequests)
	}
	if res.AcceptedRequests != 18 {
		t.Fatalf("AcceptedRequests = %d, want 18", res.AcceptedRequests)
	}
	if res.HostsDownPeak != 1 {
		t.Fatalf("HostsDownPeak = %d, want 1", res.HostsDownPeak)
	}
	if res.Replans < 1 || res.EvictedGroups < 1 {
		t.Fatalf("kill triggered replans=%d evicted=%d, want >= 1 each", res.Replans, res.EvictedGroups)
	}
	if res.HandoffRetries < 1 {
		t.Fatalf("periodic channel drops recorded no hand-off retries")
	}
	if res.RecoveryMs <= 0 {
		t.Fatalf("recovery time not recorded")
	}
	if !res.DegradedDuring {
		t.Fatalf("fleet stayed resident during the outage; 2 x 4 MB hosts cannot hold a 6 MB model")
	}
	if !res.ResidentAfterRejoin || !res.PlacementRestored {
		t.Fatalf("rejoin did not restore residency: resident=%v restored=%v",
			res.ResidentAfterRejoin, res.PlacementRestored)
	}
	for _, name := range []string{
		"fleet_host_down_total", "fleet_replans_total",
		"fleet_handoff_retries_total", "fleet_evicted_groups_total",
		"fleet_degraded",
	} {
		found := false
		for k := range res.Metrics {
			if strings.HasPrefix(k, name) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("recovery series %s missing from the metrics snapshot", name)
		}
	}
	var sb strings.Builder
	res.Print(&sb)
	out := sb.String()
	for _, want := range []string{"0 dropped", "recovery", "degraded", "restored=true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Print output missing %q:\n%s", want, out)
		}
	}
}
