package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"plinius/internal/core"
	"plinius/internal/darknet"
	"plinius/internal/mnist"
)

// Fig8Row is one batch-size point of the batched-decryption overhead
// experiment (paper Fig. 8): iteration time with encrypted vs
// unencrypted training data in PM.
//
// The paper reports a ~1.2x slowdown at the iteration level. In this
// reproduction the CNN compute runs in pure Go (~10-100x slower per
// FLOP than Darknet's C) while AES-GCM runs at native speed, so the
// decryption share of an iteration is smaller than the paper's; the
// fetch columns isolate the data-pipeline cost (batch read from PM +
// decrypt), where the overhead shape is preserved and robust.
type Fig8Row struct {
	BatchSize      int
	EncryptedIter  time.Duration
	PlainIter      time.Duration
	Overhead       float64 // encrypted / plain, full iteration
	EncryptedFetch time.Duration
	PlainFetch     time.Duration
	FetchOverhead  float64 // encrypted / plain, batch fetch only
}

// Fig8Result holds one server's sweep.
type Fig8Result struct {
	Server string
	Rows   []Fig8Row
}

// Fig8Config parameterises the sweep. The paper uses 5 LReLU conv
// layers and batch sizes up to 1000; filters and iteration counts are
// scaled so the pure-Go CNN finishes quickly while preserving the
// overhead ratio.
type Fig8Config struct {
	Server      core.ServerProfile
	BatchSizes  []int
	ConvLayers  int
	Filters     int
	Iters       int
	DatasetSize int
	Seed        int64
}

// RunFig8 measures the per-iteration cost of decrypting training
// batches from PM into enclave memory.
func RunFig8(cfg Fig8Config) (Fig8Result, error) {
	if len(cfg.BatchSizes) == 0 {
		cfg.BatchSizes = []int{16, 32, 64, 128, 256}
	}
	if cfg.ConvLayers == 0 {
		cfg.ConvLayers = 5
	}
	if cfg.Filters == 0 {
		cfg.Filters = 4
	}
	if cfg.Iters == 0 {
		cfg.Iters = 3
	}
	if cfg.DatasetSize == 0 {
		cfg.DatasetSize = 512
	}
	if cfg.Server.Name == "" {
		cfg.Server = core.SGXEmlPM()
	}
	res := Fig8Result{Server: cfg.Server.Name}
	ds := mnist.Synthetic(cfg.DatasetSize, cfg.Seed)
	for _, batch := range cfg.BatchSizes {
		encIter, encFetch, err := runFig8Point(cfg, ds, batch, false)
		if err != nil {
			return Fig8Result{}, fmt.Errorf("fig8 batch %d encrypted: %w", batch, err)
		}
		plainIter, plainFetch, err := runFig8Point(cfg, ds, batch, true)
		if err != nil {
			return Fig8Result{}, fmt.Errorf("fig8 batch %d plain: %w", batch, err)
		}
		row := Fig8Row{
			BatchSize:      batch,
			EncryptedIter:  encIter,
			PlainIter:      plainIter,
			EncryptedFetch: encFetch,
			PlainFetch:     plainFetch,
		}
		if plainIter > 0 {
			row.Overhead = float64(encIter) / float64(plainIter)
		}
		if plainFetch > 0 {
			row.FetchOverhead = float64(encFetch) / float64(plainFetch)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func runFig8Point(cfg Fig8Config, ds *mnist.Dataset, batch int, plaintext bool) (iter, fetch time.Duration, err error) {
	f, err := core.New(core.Config{
		ModelConfig:   darknet.MNISTConfig(cfg.ConvLayers, cfg.Filters, batch),
		Server:        cfg.Server,
		PMBytes:       128 << 20,
		Seed:          cfg.Seed,
		PlaintextData: plaintext,
	})
	if err != nil {
		return 0, 0, err
	}
	if err := f.LoadDataset(ds); err != nil {
		return 0, 0, err
	}
	// Warm-up iteration (allocates layer workspaces).
	if err := f.TrainIters(1, nil); err != nil {
		return 0, 0, err
	}
	pm0 := f.PM.Clock().Modeled()
	encl0 := f.Enclave.Clock().Modeled()
	start := time.Now()
	if err := f.TrainIters(1+cfg.Iters, nil); err != nil {
		return 0, 0, err
	}
	wall := time.Since(start)
	modeled := (f.PM.Clock().Modeled() - pm0) + (f.Enclave.Clock().Modeled() - encl0)
	iter = (wall + modeled) / time.Duration(cfg.Iters)

	// Fetch-only measurement: read+decrypt batches without training.
	// Repetitions scale inversely with batch size, and the minimum of
	// three trials is kept — scheduler/GC noise only ever inflates a
	// wall-clock measurement, so the minimum is the clean estimate.
	rng := rand.New(rand.NewSource(cfg.Seed + 9))
	fetchReps := 4096 / batch
	if fetchReps < 32 {
		fetchReps = 32
	}
	if _, _, err := f.Data.Batch(rng, batch); err != nil { // warm-up
		return 0, 0, err
	}
	for trial := 0; trial < 3; trial++ {
		pm1 := f.PM.Clock().Modeled()
		encl1 := f.Enclave.Clock().Modeled()
		fstart := time.Now()
		for i := 0; i < fetchReps; i++ {
			if _, _, err := f.Data.Batch(rng, batch); err != nil {
				return 0, 0, err
			}
		}
		fwall := time.Since(fstart)
		fmodeled := (f.PM.Clock().Modeled() - pm1) + (f.Enclave.Clock().Modeled() - encl1)
		got := (fwall + fmodeled) / time.Duration(fetchReps)
		if trial == 0 || got < fetch {
			fetch = got
		}
	}
	return iter, fetch, nil
}

// Print renders the Fig. 8 series.
func (r Fig8Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Fig. 8 — %s: iteration time vs batch size\n", r.Server)
	tw := newTable(w)
	fmt.Fprintln(tw, "batch\titer enc (ms)\titer plain (ms)\titer ovh\tfetch enc (ms)\tfetch plain (ms)\tfetch ovh")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%d\t%s\t%s\t%.2fx\t%s\t%s\t%.2fx\n",
			row.BatchSize, ms(row.EncryptedIter), ms(row.PlainIter), row.Overhead,
			ms(row.EncryptedFetch), ms(row.PlainFetch), row.FetchOverhead)
	}
	tw.Flush()
}
