package experiments

import (
	"fmt"
	"io"
	"time"

	"plinius/internal/core"
)

// Table1a is the paper's Table Ia: percentage breakdown of the
// mirroring steps, separated at the EPC limit.
type Table1a struct {
	Server string
	// Save breakdown (% of save latency).
	EncryptBelow, WriteBelow   float64
	EncryptBeyond, WriteBeyond float64
	// Restore breakdown (% of restore latency).
	ReadBelow, DecryptBelow   float64
	ReadBeyond, DecryptBeyond float64
	HasBeyond                 bool
}

// Table1b is the paper's Table Ib: mirroring speed-ups over SSD
// checkpointing, separated at the EPC limit.
type Table1b struct {
	Server string
	// Save speed-ups.
	WriteBelow, SaveTotalBelow   float64
	WriteBeyond, SaveTotalBeyond float64
	// Restore speed-ups.
	ReadBelow, RestoreTotalBelow   float64
	ReadBeyond, RestoreTotalBeyond float64
	HasBeyond                      bool
}

// ComputeTable1a derives Table Ia from a Fig. 7 sweep.
func ComputeTable1a(fig7 Fig7Result) Table1a {
	out := Table1a{Server: fig7.Server}
	var below, beyond []Fig7Row
	for _, r := range fig7.Rows {
		if r.BeyondEPC {
			beyond = append(beyond, r)
		} else {
			below = append(below, r)
		}
	}
	out.EncryptBelow, out.WriteBelow = saveShares(below, func(r Fig7Row) core.StepTiming { return r.MirrorSave })
	out.ReadBelow, out.DecryptBelow = restoreShares(below, func(r Fig7Row) core.StepTiming { return r.MirrorRestore })
	if len(beyond) > 0 {
		out.HasBeyond = true
		out.EncryptBeyond, out.WriteBeyond = saveShares(beyond, func(r Fig7Row) core.StepTiming { return r.MirrorSave })
		out.ReadBeyond, out.DecryptBeyond = restoreShares(beyond, func(r Fig7Row) core.StepTiming { return r.MirrorRestore })
	}
	return out
}

func saveShares(rows []Fig7Row, get func(Fig7Row) core.StepTiming) (encryptPct, writePct float64) {
	var enc, wr time.Duration
	for _, r := range rows {
		st := get(r)
		enc += st.Encrypt
		wr += st.Write
	}
	total := enc + wr
	if total == 0 {
		return 0, 0
	}
	return 100 * float64(enc) / float64(total), 100 * float64(wr) / float64(total)
}

func restoreShares(rows []Fig7Row, get func(Fig7Row) core.StepTiming) (readPct, decryptPct float64) {
	var rd, dec time.Duration
	for _, r := range rows {
		st := get(r)
		rd += st.Read
		dec += st.Decrypt
	}
	total := rd + dec
	if total == 0 {
		return 0, 0
	}
	return 100 * float64(rd) / float64(total), 100 * float64(dec) / float64(total)
}

// ComputeTable1b derives Table Ib from a Fig. 7 sweep.
func ComputeTable1b(fig7 Fig7Result) Table1b {
	out := Table1b{Server: fig7.Server}
	var below, beyond []Fig7Row
	for _, r := range fig7.Rows {
		if r.BeyondEPC {
			beyond = append(beyond, r)
		} else {
			below = append(below, r)
		}
	}
	out.WriteBelow = ratio(below, func(r Fig7Row) (time.Duration, time.Duration) {
		return r.SSDSave.Write, r.MirrorSave.Write
	})
	out.SaveTotalBelow = ratio(below, func(r Fig7Row) (time.Duration, time.Duration) {
		return r.SSDSave.Total(), r.MirrorSave.Total()
	})
	out.ReadBelow = ratio(below, func(r Fig7Row) (time.Duration, time.Duration) {
		return r.SSDRestore.Read, r.MirrorRestore.Read
	})
	out.RestoreTotalBelow = ratio(below, func(r Fig7Row) (time.Duration, time.Duration) {
		return r.SSDRestore.Total(), r.MirrorRestore.Total()
	})
	if len(beyond) > 0 {
		out.HasBeyond = true
		out.WriteBeyond = ratio(beyond, func(r Fig7Row) (time.Duration, time.Duration) {
			return r.SSDSave.Write, r.MirrorSave.Write
		})
		out.SaveTotalBeyond = ratio(beyond, func(r Fig7Row) (time.Duration, time.Duration) {
			return r.SSDSave.Total(), r.MirrorSave.Total()
		})
		out.ReadBeyond = ratio(beyond, func(r Fig7Row) (time.Duration, time.Duration) {
			return r.SSDRestore.Read, r.MirrorRestore.Read
		})
		out.RestoreTotalBeyond = ratio(beyond, func(r Fig7Row) (time.Duration, time.Duration) {
			return r.SSDRestore.Total(), r.MirrorRestore.Total()
		})
	}
	return out
}

// ratio averages ssd/pm per row.
func ratio(rows []Fig7Row, get func(Fig7Row) (ssd, mirror time.Duration)) float64 {
	if len(rows) == 0 {
		return 0
	}
	var sum float64
	for _, r := range rows {
		ssd, mir := get(r)
		if mir > 0 {
			sum += float64(ssd) / float64(mir)
		}
	}
	return sum / float64(len(rows))
}

// Print renders Table Ia.
func (t Table1a) Print(w io.Writer) {
	fmt.Fprintf(w, "Table Ia — %s: breakdown of mirroring steps (%%)\n", t.Server)
	tw := newTable(w)
	fmt.Fprintln(tw, "step\tbelow EPC\tbeyond EPC")
	fmt.Fprintf(tw, "save: Encrypt\t%.1f\t%s\n", t.EncryptBelow, pctOrDash(t.EncryptBeyond, t.HasBeyond))
	fmt.Fprintf(tw, "save: Write\t%.1f\t%s\n", t.WriteBelow, pctOrDash(t.WriteBeyond, t.HasBeyond))
	fmt.Fprintf(tw, "restore: Read\t%.1f\t%s\n", t.ReadBelow, pctOrDash(t.ReadBeyond, t.HasBeyond))
	fmt.Fprintf(tw, "restore: Decrypt\t%.1f\t%s\n", t.DecryptBelow, pctOrDash(t.DecryptBeyond, t.HasBeyond))
	tw.Flush()
}

// Print renders Table Ib.
func (t Table1b) Print(w io.Writer) {
	fmt.Fprintf(w, "Table Ib — %s: PLINIUS speed-ups over SSD checkpointing\n", t.Server)
	tw := newTable(w)
	fmt.Fprintln(tw, "step\tbelow EPC\tbeyond EPC")
	fmt.Fprintf(tw, "save: Write\t%.1fx\t%s\n", t.WriteBelow, xOrDash(t.WriteBeyond, t.HasBeyond))
	fmt.Fprintf(tw, "save: Total\t%.1fx\t%s\n", t.SaveTotalBelow, xOrDash(t.SaveTotalBeyond, t.HasBeyond))
	fmt.Fprintf(tw, "restore: Read\t%.1fx\t%s\n", t.ReadBelow, xOrDash(t.ReadBeyond, t.HasBeyond))
	fmt.Fprintf(tw, "restore: Total\t%.1fx\t%s\n", t.RestoreTotalBelow, xOrDash(t.RestoreTotalBeyond, t.HasBeyond))
	tw.Flush()
}

func pctOrDash(v float64, has bool) string {
	if !has {
		return "-"
	}
	return fmt.Sprintf("%.1f", v)
}

func xOrDash(v float64, has bool) string {
	if !has {
		return "-"
	}
	return fmt.Sprintf("%.1fx", v)
}
