package experiments

import (
	"strings"
	"testing"

	"plinius/internal/core"
)

// TestFleetBeatsSingleHost: the acceptance table for multi-host
// serving. A model over any single host's EPC is served monolithic,
// sharded on one host, and across a 3-host fleet. The fleet must hold
// every shard resident — zero paging faults AND zero steady-state PM
// restores across the batch run — paying sealed activation hand-offs
// on attested channels instead.
func TestFleetBeatsSingleHost(t *testing.T) {
	res, err := RunFleet(core.SGXEmlPM(), 6, 5, 3, 4, 1, 42)
	if err != nil {
		t.Fatalf("RunFleet: %v", err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("RunFleet returned %d rows", len(res.Rows))
	}
	if res.ModelBytes <= res.HostEPC {
		t.Fatalf("model %d bytes fits one %d-byte host; the experiment needs an over-EPC model",
			res.ModelBytes, res.HostEPC)
	}
	mono, sharded, fl := res.Rows[0], res.Rows[1], res.Rows[2]
	if !mono.OverEPC || mono.RestoreFaults+mono.ServeFaults == 0 {
		t.Fatalf("monolithic host not over the knee: %+v", mono)
	}
	if !sharded.Streaming || sharded.PMRestores == 0 {
		t.Fatalf("single-host sharded baseline not streaming PM: %+v", sharded)
	}
	if fl.Hosts != 3 || fl.Shards < 2 || fl.Channels == 0 {
		t.Fatalf("fleet did not split across hosts: %+v", fl)
	}
	if fl.OverEPC {
		t.Fatalf("a fleet host crossed the knee: peak %d > %d", fl.PeakResidentBytes, res.HostEPC)
	}
	if fl.ServeFaults != 0 {
		t.Fatalf("fleet paid %d paging faults serving; placement must be resident", fl.ServeFaults)
	}
	if fl.Streaming || fl.PMRestores != 0 {
		t.Fatalf("fleet streamed PM per batch (%d restores); placement must be resident", fl.PMRestores)
	}
	if fl.Handoffs == 0 || fl.HandoffBytes == 0 {
		t.Fatalf("fleet recorded no inter-host hand-offs: %+v", fl)
	}
	if res.Speedup <= 0 {
		t.Fatalf("speedup vs sharded baseline not recorded: %v", res.Speedup)
	}
	if len(res.HostReports) != 3 {
		t.Fatalf("%d host reports, want 3", len(res.HostReports))
	}
	placed := 0
	for _, hr := range res.HostReports {
		placed += len(hr.Shards)
	}
	if placed == 0 {
		t.Fatal("host reports show no placed shard ranges")
	}
	for _, name := range []string{
		"fleet_handoff_bytes_total", "fleet_handoff_seconds_total",
		"fleet_router_queue_depth", "fleet_host_headroom_bytes",
	} {
		found := false
		for k := range res.Metrics {
			if strings.HasPrefix(k, name) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("fabric series %s missing from the metrics snapshot", name)
		}
	}
	var sb strings.Builder
	res.Print(&sb)
	out := sb.String()
	for _, want := range []string{"fleet", "over knee", "resident", "host 0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Print output missing %q:\n%s", want, out)
		}
	}
}
