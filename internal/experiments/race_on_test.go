//go:build race

package experiments

// raceEnabled reports whether the race detector is active. Tests that
// assert wall-clock cost ratios (real AES vs real compute) skip under
// the detector: its instrumentation slows pure-Go loops by an order of
// magnitude while assembler crypto is barely touched, which distorts
// exactly the ratios those tests check.
const raceEnabled = true
