package experiments

import (
	"fmt"
	"io"

	"plinius/internal/core"
	"plinius/internal/darknet"
	"plinius/internal/mnist"
	"plinius/internal/spot"
)

// Fig10Result holds the spot-instance training experiment (paper
// Fig. 10): crash-resilient and non-resilient training driven by a
// spot price trace with a maximum bid.
type Fig10Result struct {
	MaxBid        float64
	Resilient     spot.Result
	NonResilient  spot.Result
	TraceLen      int
	Interruptions int
	// Final model iterations: for the resilient run this equals the
	// executed iterations; for the non-resilient run it only counts
	// progress since the last restart (the paper's Fig. 10c effect).
	ResilientFinalIter    int
	NonResilientFinalIter int
}

// Fig10Config parameterises the simulation.
type Fig10Config struct {
	Server core.ServerProfile
	// Trace is the price series; empty means a synthetic trace shaped
	// like the paper's (two interruptions at the default bid).
	Trace spot.Trace
	// MaxBid is the user's bid (paper: 0.0955).
	MaxBid float64
	// TargetIters is the training length (paper: 500).
	TargetIters int
	// ItersPerInterval maps training speed onto trace time.
	ItersPerInterval int
	ConvLayers       int
	Filters          int
	Batch            int
	Dataset          int
	Seed             int64
}

func (c *Fig10Config) setDefaults() {
	if c.Server.Name == "" {
		c.Server = core.EmlSGXPM()
	}
	if c.MaxBid == 0 {
		c.MaxBid = 0.0955
	}
	if c.TargetIters == 0 {
		c.TargetIters = 40
	}
	if c.ItersPerInterval == 0 {
		c.ItersPerInterval = 4
	}
	if c.ConvLayers == 0 {
		c.ConvLayers = 3 // scaled down from the paper's 12 for pure-Go speed
	}
	if c.Filters == 0 {
		c.Filters = 4
	}
	if c.Batch == 0 {
		c.Batch = 32
	}
	if c.Dataset == 0 {
		c.Dataset = 512
	}
	if len(c.Trace.Prices) == 0 {
		// Synthetic price series with two forced spikes above the
		// default bid at 1/3 and 2/3 of the training window — the two
		// interruptions of the paper's Fig. 10(b).
		intervals := 2 * c.TargetIters / c.ItersPerInterval
		c.Trace = spot.Synthetic(intervals, 0.09, 0.002, c.Seed+5)
		c.Trace.Prices[intervals/3] = c.MaxBid * 1.3
		c.Trace.Prices[2*intervals/3] = c.MaxBid * 1.3
	}
}

// RunFig10 simulates spot training with and without crash resilience.
func RunFig10(cfg Fig10Config) (Fig10Result, error) {
	cfg.setDefaults()
	res := Fig10Result{
		MaxBid:        cfg.MaxBid,
		TraceLen:      len(cfg.Trace.Prices),
		Interruptions: cfg.Trace.Interruptions(cfg.MaxBid),
	}
	ds := mnist.Synthetic(cfg.Dataset, cfg.Seed)
	modelCfg := darknet.MNISTConfig(cfg.ConvLayers, cfg.Filters, cfg.Batch)
	spotCfg := spot.Config{
		MaxBid:           cfg.MaxBid,
		TargetIters:      cfg.TargetIters,
		ItersPerInterval: cfg.ItersPerInterval,
	}

	run := func(mirrorFreq int) (spot.Result, int, error) {
		f, err := core.New(core.Config{
			ModelConfig: modelCfg,
			Server:      cfg.Server,
			PMBytes:     64 << 20,
			MirrorFreq:  mirrorFreq,
			Seed:        cfg.Seed,
		})
		if err != nil {
			return spot.Result{}, 0, err
		}
		if err := f.LoadDataset(ds); err != nil {
			return spot.Result{}, 0, err
		}
		sr, err := spot.Run(cfg.Trace, spotCfg, &core.SpotTrainer{F: f})
		return sr, f.Iteration(), err
	}

	var err error
	if res.Resilient, res.ResilientFinalIter, err = run(1); err != nil {
		return Fig10Result{}, fmt.Errorf("fig10 resilient: %w", err)
	}
	if res.NonResilient, res.NonResilientFinalIter, err = run(-1); err != nil {
		return Fig10Result{}, fmt.Errorf("fig10 non-resilient: %w", err)
	}
	return res, nil
}

// Print renders the Fig. 10 summary: loss progress, state curves and
// interruption counts.
func (r Fig10Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Fig. 10 — spot-instance training (max bid %.4f, %d interruptions in trace)\n",
		r.MaxBid, r.Interruptions)
	tw := newTable(w)
	fmt.Fprintln(tw, "run\titers executed\tcompleted\tinterruptions\tfinal loss")
	final := func(ls []float32) float32 {
		if len(ls) == 0 {
			return 0
		}
		return ls[len(ls)-1]
	}
	fmt.Fprintf(tw, "crash resilient\t%d\t%v\t%d\t%.3f\n",
		r.Resilient.Iterations, r.Resilient.Completed, r.Resilient.Interruptions, final(r.Resilient.Losses))
	fmt.Fprintf(tw, "non-resilient\t%d\t%v\t%d\t%.3f\n",
		r.NonResilient.Iterations, r.NonResilient.Completed, r.NonResilient.Interruptions, final(r.NonResilient.Losses))
	tw.Flush()
	fmt.Fprint(w, "state curve (resilient): ")
	printStates(w, r.Resilient.States)
	fmt.Fprint(w, "state curve (non-res.) : ")
	printStates(w, r.NonResilient.States)
}

func printStates(w io.Writer, states []spot.StatePoint) {
	for _, s := range states {
		if s.Running {
			fmt.Fprint(w, "1")
		} else {
			fmt.Fprint(w, "0")
		}
	}
	fmt.Fprintln(w)
}
