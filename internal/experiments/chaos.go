package experiments

import (
	"context"
	"fmt"
	"io"
	"reflect"
	"sort"
	"sync"
	"time"

	"plinius/internal/chaos"
	"plinius/internal/core"
	"plinius/internal/enclave"
	"plinius/internal/fleet"
	"plinius/internal/mnist"
	"plinius/internal/obs"
)

// Chaos experiment: kill a fleet host mid-load and measure what the
// failure-domain layer actually delivers. A model sized past any one
// host's EPC is served across numHosts hosts; a sustained stream of
// micro-batches runs at full window; at one third of the stream the
// host holding shard 0 is killed, at two thirds it rejoins. The claims
// under test:
//
//   - zero accepted requests are dropped — batches in flight on the
//     dead host are re-routed and retried on survivors (sealed
//     per-batch hand-offs make the retry idempotent);
//   - the fleet detects the death, evicts every group touching the
//     host, and replans on the survivors' headroom — resident when it
//     fits, degraded streaming when it does not;
//   - when the host rejoins, the fleet promotes back to the original
//     resident placement (the planner is deterministic).
//
// Channel faults run throughout (a periodic injected drop), so the
// hand-off retry/backoff path is exercised on every phase, not just
// during the outage.

// ChaosResult holds one chaos run, shaped for BENCH_chaos.json.
type ChaosResult struct {
	Server     string `json:"server"`
	ModelBytes int    `json:"model_bytes"`
	HostEPC    int    `json:"host_epc_bytes"`
	FleetHosts int    `json:"fleet_hosts"`
	Batch      int    `json:"batch"`
	Batches    int    `json:"batches"`

	// KilledHost is the fleet index of the victim; KillAtBatch and
	// RejoinAtBatch the submission indices where the kill and rejoin
	// were scripted.
	KilledHost    int `json:"killed_host"`
	KillAtBatch   int `json:"kill_at_batch"`
	RejoinAtBatch int `json:"rejoin_at_batch"`

	// AcceptedRequests counts every request submitted; DroppedRequests
	// the ones that failed — the headline claim is that this is zero.
	AcceptedRequests int `json:"accepted_requests"`
	DroppedRequests  int `json:"dropped_requests"`

	// RecoveryMs is the wall time from the kill to the first completed
	// batch that was submitted after it — detection, eviction, replan
	// and the batch itself.
	RecoveryMs float64 `json:"recovery_ms"`

	// HostsDownPeak, Replans, EvictedGroups and HandoffRetries are the
	// recovery counters at the end of the run.
	HostsDownPeak  int    `json:"hosts_down_peak"`
	Replans        uint64 `json:"replans"`
	EvictedGroups  uint64 `json:"evicted_groups"`
	HandoffRetries uint64 `json:"handoff_retries"`

	// DegradedDuring reports whether the fleet served degraded
	// (streaming on survivors) during the outage; ResidentAfterRejoin
	// whether the rejoin promoted it back to full residency; and
	// PlacementRestored whether the promoted placement equals the
	// original one.
	DegradedDuring      bool `json:"degraded_during"`
	ResidentAfterRejoin bool `json:"resident_after_rejoin"`
	PlacementRestored   bool `json:"placement_restored"`

	// Phase P95 latencies: before the kill, between kill and rejoin,
	// and after the rejoin.
	P95BeforeMs float64 `json:"p95_before_ms"`
	P95DuringMs float64 `json:"p95_during_ms"`
	P95AfterMs  float64 `json:"p95_after_ms"`

	// Metrics is the flattened fleet registry at the end of the run.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// RunChaos serves a sizeMB-parameter model across a numHosts fleet of
// epcMB hosts, kills one placed host under sustained load, rejoins it,
// and measures drops, recovery time and per-phase P95. epcMB <= 0 uses
// the paper's 93.5 MB budget; numHosts <= 0 uses 3. The host budget
// should be chosen so the survivors cannot hold the model resident —
// that is what pushes the fleet onto the degraded-streaming rung.
func RunChaos(server core.ServerProfile, sizeMB, epcMB, numHosts, batches, batch int, seed int64) (ChaosResult, error) {
	if sizeMB <= 0 {
		sizeMB = 187 // ~2x the usable EPC: three hosts hold it, two do not
	}
	epcBytes := enclave.UsableEPC
	if epcMB > 0 {
		epcBytes = epcMB << 20
	}
	if numHosts <= 0 {
		numHosts = 3
	}
	if batches <= 0 {
		batches = 24
	}
	if batch <= 0 {
		batch = 1
	}
	cfgText, err := core.SyntheticModelConfig(sizeMB << 20)
	if err != nil {
		return ChaosResult{}, err
	}
	f, err := core.New(core.Config{
		ModelConfig:        cfgText,
		Server:             server,
		PMBytes:            (sizeMB*5/2 + 48) << 20,
		Seed:               seed,
		TrainOverheadBytes: 1 << 20,
	})
	if err != nil {
		return ChaosResult{}, err
	}
	hosts := make([]*enclave.Host, numHosts)
	for i := range hosts {
		hosts[i] = enclave.NewHost(server.Enclave, enclave.WithHostEPC(epcBytes))
	}
	reg := obs.NewRegistry()
	fl, err := fleet.New(f, fleet.Options{
		Hosts:            hosts,
		Batch:            batch,
		OverheadBytes:    64 << 10,
		Seed:             seed + 200,
		ChannelLatency:   50 * time.Microsecond,
		HandoffDeadline:  10 * time.Millisecond,
		DispatchDeadline: 30 * time.Second,
		// A periodic injected drop on every inter-host channel keeps the
		// retry/backoff path hot through all three phases.
		ChannelFaults: func(fromHost, toHost int) *chaos.Injector {
			return chaos.DropEvery(7)
		},
		Metrics: reg,
	})
	if err != nil {
		return ChaosResult{}, fmt.Errorf("chaos fleet: %w", err)
	}
	defer fl.Close()

	original := fl.Placement()
	victimIdx := original.Groups[0][0]
	victim := hosts[victimIdx]

	killAt := batches / 3
	rejoinAt := 2 * batches / 3
	if killAt < 1 {
		killAt = 1
	}
	if rejoinAt <= killAt {
		rejoinAt = killAt + 1
	}

	res := ChaosResult{
		Server:           server.Name,
		ModelBytes:       f.Net.ParamBytes(),
		HostEPC:          epcBytes,
		FleetHosts:       numHosts,
		Batch:            batch,
		Batches:          batches,
		KilledHost:       victimIdx,
		KillAtBatch:      killAt,
		RejoinAtBatch:    rejoinAt,
		AcceptedRequests: batches * batch,
	}

	images := mnist.Synthetic(batch*batches, seed).Images
	in := f.Net.InputSize()

	type sample struct {
		phase int // 0 before, 1 during, 2 after
		ms    float64
	}
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		samples   []sample
		dropped   int
		killWall  time.Time
		recovered time.Duration // kill -> first post-kill submission completing
	)
	window := fl.Window()
	if window < 1 {
		window = 1
	}
	sem := make(chan struct{}, window)
	for b := 0; b < batches; b++ {
		if b == killAt {
			// Let the in-flight window keep running — the kill must land
			// under live traffic — and murder the victim between two
			// submissions so the scripted index is exact.
			mu.Lock()
			killWall = time.Now()
			mu.Unlock()
			victim.Kill()
		}
		if b == rejoinAt {
			// Drain the in-flight window so the outage-phase recovery
			// has definitely run, sample the degraded state while the
			// outage is still on, then bring the host back and promote.
			for i := 0; i < window; i++ {
				sem <- struct{}{}
			}
			res.DegradedDuring = fl.Degraded()
			res.HostsDownPeak = fl.HostsDown()
			victim.Rejoin()
			err := fl.Rejoin()
			for i := 0; i < window; i++ {
				<-sem
			}
			if err != nil {
				return res, fmt.Errorf("rejoin: %w", err)
			}
		}
		phase := 0
		switch {
		case b >= rejoinAt:
			phase = 2
		case b >= killAt:
			phase = 1
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(b, phase int) {
			defer wg.Done()
			defer func() { <-sem }()
			start := time.Now()
			_, err := fl.ClassifyBatchCtx(context.Background(), images[b*batch*in:(b+1)*batch*in])
			elapsed := time.Since(start)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				dropped += batch
				return
			}
			samples = append(samples, sample{phase: phase, ms: float64(elapsed.Microseconds()) / 1e3})
			if phase >= 1 && !killWall.IsZero() && recovered == 0 {
				recovered = time.Since(killWall)
			}
		}(b, phase)
	}
	wg.Wait()

	res.DroppedRequests = dropped
	res.RecoveryMs = float64(recovered.Microseconds()) / 1e3
	res.Replans = fl.Replans()
	res.EvictedGroups = fl.EvictedGroups()
	res.HandoffRetries = fl.HandoffRetries()
	res.ResidentAfterRejoin = !fl.Degraded() && !fl.Streaming()
	res.PlacementRestored = placementsEqual(original, fl.Placement())
	res.Metrics = obs.Flatten(reg)

	p95 := func(phase int) float64 {
		var ms []float64
		for _, s := range samples {
			if s.phase == phase {
				ms = append(ms, s.ms)
			}
		}
		if len(ms) == 0 {
			return 0
		}
		sort.Float64s(ms)
		idx := (len(ms)*95 + 99) / 100
		if idx > 0 {
			idx--
		}
		return ms[idx]
	}
	res.P95BeforeMs = p95(0)
	res.P95DuringMs = p95(1)
	res.P95AfterMs = p95(2)
	return res, nil
}

// placementsEqual compares the shard plan and every group's host
// assignment.
func placementsEqual(a, b fleet.Placement) bool {
	return reflect.DeepEqual(a.Plan, b.Plan) && reflect.DeepEqual(a.Groups, b.Groups)
}

// Print renders the chaos run.
func (r ChaosResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Chaos — %s: %.0f MB model on %d x %.1f MB hosts, kill host %d at batch %d, rejoin at %d\n",
		r.Server, mbOf(r.ModelBytes), r.FleetHosts, mbOf(r.HostEPC), r.KilledHost, r.KillAtBatch, r.RejoinAtBatch)
	fmt.Fprintf(w, "requests: %d accepted, %d dropped\n", r.AcceptedRequests, r.DroppedRequests)
	fmt.Fprintf(w, "recovery: %.1f ms (detection -> replan -> first batch on survivors)\n", r.RecoveryMs)
	fmt.Fprintf(w, "replans %d, evicted groups %d, hand-off retries %d, hosts down at peak %d\n",
		r.Replans, r.EvictedGroups, r.HandoffRetries, r.HostsDownPeak)
	mode := "resident on survivors"
	if r.DegradedDuring {
		mode = "degraded (streaming on survivors)"
	}
	fmt.Fprintf(w, "during outage: %s\n", mode)
	fmt.Fprintf(w, "after rejoin: resident=%v, original placement restored=%v\n",
		r.ResidentAfterRejoin, r.PlacementRestored)
	fmt.Fprintf(w, "P95 latency: before %.2f ms, during %.2f ms, after %.2f ms\n",
		r.P95BeforeMs, r.P95DuringMs, r.P95AfterMs)
}
