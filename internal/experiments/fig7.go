package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"plinius/internal/core"
	"plinius/internal/enclave"
)

// Fig7Row is one model-size point of the Fig. 7 comparison: PM
// mirroring vs SSD checkpointing, saves and restores, with per-step
// breakdowns.
type Fig7Row struct {
	TargetMB      int
	ActualBytes   int
	BeyondEPC     bool
	MirrorSave    core.StepTiming
	MirrorRestore core.StepTiming
	SSDSave       core.StepTiming
	SSDRestore    core.StepTiming
}

// Fig7Result holds one server's sweep.
type Fig7Result struct {
	Server string
	Rows   []Fig7Row
}

// RunFig7 sweeps model sizes (in MB) on one server profile, measuring
// each save/restore reps times and keeping the mean.
func RunFig7(server core.ServerProfile, sizesMB []int, reps int, seed int64) (Fig7Result, error) {
	if len(sizesMB) == 0 {
		sizesMB = []int{10, 22, 33, 44, 56, 67, 78, 89, 100}
	}
	if reps <= 0 {
		reps = 3
	}
	res := Fig7Result{Server: server.Name}
	for _, mb := range sizesMB {
		row, err := runFig7Point(server, mb, reps, seed)
		if err != nil {
			return Fig7Result{}, fmt.Errorf("fig7 %s %dMB: %w", server.Name, mb, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func runFig7Point(server core.ServerProfile, sizeMB, reps int, seed int64) (Fig7Row, error) {
	cfgText, err := core.SyntheticModelConfig(sizeMB << 20)
	if err != nil {
		return Fig7Row{}, err
	}
	// PM must hold twin copies of the sealed model plus slack.
	pmBytes := (sizeMB*5/2 + 48) << 20
	f, err := core.New(core.Config{
		ModelConfig: cfgText,
		Server:      server,
		PMBytes:     pmBytes,
		Seed:        seed,
	})
	if err != nil {
		return Fig7Row{}, err
	}
	row := Fig7Row{
		TargetMB:    sizeMB,
		ActualBytes: f.Net.ParamBytes(),
	}
	row.BeyondEPC = f.Net.ParamBytes()+15<<20 > enclave.UsableEPC

	for i := 0; i < reps; i++ {
		// Collect garbage from framework construction so GC pauses do
		// not land inside the timed AES sections.
		runtime.GC()
		st, err := f.MirrorSave()
		if err != nil {
			return Fig7Row{}, fmt.Errorf("mirror save: %w", err)
		}
		row.MirrorSave = addTiming(row.MirrorSave, st)
		rt, err := f.MirrorRestore()
		if err != nil {
			return Fig7Row{}, fmt.Errorf("mirror restore: %w", err)
		}
		row.MirrorRestore = addTiming(row.MirrorRestore, rt)
		ss, err := f.SSDSave(fmt.Sprintf("ckpt-%d", i))
		if err != nil {
			return Fig7Row{}, fmt.Errorf("ssd save: %w", err)
		}
		row.SSDSave = addTiming(row.SSDSave, ss)
		sr, err := f.SSDRestore(fmt.Sprintf("ckpt-%d", i))
		if err != nil {
			return Fig7Row{}, fmt.Errorf("ssd restore: %w", err)
		}
		row.SSDRestore = addTiming(row.SSDRestore, sr)
	}
	row.MirrorSave = divTiming(row.MirrorSave, reps)
	row.MirrorRestore = divTiming(row.MirrorRestore, reps)
	row.SSDSave = divTiming(row.SSDSave, reps)
	row.SSDRestore = divTiming(row.SSDRestore, reps)
	return row, nil
}

func addTiming(a, b core.StepTiming) core.StepTiming {
	return core.StepTiming{
		Encrypt: a.Encrypt + b.Encrypt,
		Write:   a.Write + b.Write,
		Read:    a.Read + b.Read,
		Decrypt: a.Decrypt + b.Decrypt,
	}
}

func divTiming(a core.StepTiming, n int) core.StepTiming {
	d := int64(n)
	return core.StepTiming{
		Encrypt: a.Encrypt / time.Duration(d),
		Write:   a.Write / time.Duration(d),
		Read:    a.Read / time.Duration(d),
		Decrypt: a.Decrypt / time.Duration(d),
	}
}

// Print renders the save and restore panels (latencies in ms).
func (r Fig7Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Fig. 7 — %s: PM mirroring vs SSD checkpointing (ms)\n", r.Server)
	tw := newTable(w)
	fmt.Fprintln(tw, "size(MB)\tEncrypt(SSD)\tWrite(SSD)\tEncrypt(PM)\tWrite(PM)\tRead(SSD)\tDecrypt(SSD)\tRead(PM)\tDecrypt(PM)\tEPC")
	for _, row := range r.Rows {
		epc := ""
		if row.BeyondEPC {
			epc = "beyond"
		}
		fmt.Fprintf(tw, "%.0f\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			mbOf(row.ActualBytes),
			ms(row.SSDSave.Encrypt), ms(row.SSDSave.Write),
			ms(row.MirrorSave.Encrypt), ms(row.MirrorSave.Write),
			ms(row.SSDRestore.Read), ms(row.SSDRestore.Decrypt),
			ms(row.MirrorRestore.Read), ms(row.MirrorRestore.Decrypt),
			epc)
	}
	tw.Flush()
}
