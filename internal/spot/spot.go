// Package spot simulates ML model training on transient cloud instances
// (paper §VI, "Plinius on AWS EC2 Spot instances"). A price trace holds
// the spot market price at 5-minute intervals; the simulator compares
// each point against the user's maximum bid and kills or (re)launches
// the training process accordingly, producing the paper's Fig. 10 state
// and loss curves.
package spot

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
	"time"
)

// Interval is the spacing of trace points (the paper's traces carry
// prices at 5-minute intervals).
const Interval = 5 * time.Minute

// Trace is a spot-price time series.
type Trace struct {
	// Prices holds the market price at each 5-minute interval.
	Prices []float64
}

// Errors returned by this package.
var (
	ErrEmptyTrace = errors.New("spot: trace has no points")
	ErrBadTrace   = errors.New("spot: malformed trace")
	ErrBadBid     = errors.New("spot: bid must be positive")
)

// Synthetic generates a mean-reverting random-walk price trace around
// base with the given volatility, deterministic in seed. It reproduces
// the paper's scenario shape: long runnable stretches with occasional
// price spikes above the bid.
func Synthetic(points int, base, volatility float64, seed int64) Trace {
	rng := rand.New(rand.NewSource(seed))
	prices := make([]float64, points)
	p := base
	for i := range prices {
		// Mean-revert toward base, plus noise and rare spikes.
		p += 0.3*(base-p) + volatility*(rng.Float64()*2-1)
		if rng.Float64() < 0.04 {
			p += volatility * 8 * rng.Float64()
		}
		if p < base*0.5 {
			p = base * 0.5
		}
		prices[i] = p
	}
	return Trace{Prices: prices}
}

// ParseCSV reads a trace with one "minutes,price" pair per line
// (comments with #). This accepts the repository's bundled traces and
// real AWS spot price exports reduced to that form.
func ParseCSV(r io.Reader) (Trace, error) {
	var t Trace
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		_, priceStr, found := strings.Cut(text, ",")
		if !found {
			return Trace{}, fmt.Errorf("%w: line %d: %q", ErrBadTrace, line, text)
		}
		price, err := strconv.ParseFloat(strings.TrimSpace(priceStr), 64)
		if err != nil {
			return Trace{}, fmt.Errorf("%w: line %d: %v", ErrBadTrace, line, err)
		}
		t.Prices = append(t.Prices, price)
	}
	if err := sc.Err(); err != nil {
		return Trace{}, fmt.Errorf("spot: scan trace: %w", err)
	}
	if len(t.Prices) == 0 {
		return Trace{}, ErrEmptyTrace
	}
	return t, nil
}

// WriteCSV serialises a trace in the ParseCSV format.
func WriteCSV(w io.Writer, t Trace) error {
	bw := bufio.NewWriter(w)
	for i, p := range t.Prices {
		if _, err := fmt.Fprintf(bw, "%d,%.6f\n", i*int(Interval.Minutes()), p); err != nil {
			return fmt.Errorf("spot: write trace: %w", err)
		}
	}
	return bw.Flush()
}

// Availability returns, per interval, whether the instance runs under
// the given maximum bid (max_bid > market_price, §VI).
func (t Trace) Availability(maxBid float64) []bool {
	out := make([]bool, len(t.Prices))
	for i, p := range t.Prices {
		out[i] = maxBid > p
	}
	return out
}

// Interruptions counts running->killed transitions under the bid.
func (t Trace) Interruptions(maxBid float64) int {
	n := 0
	avail := t.Availability(maxBid)
	for i := 1; i < len(avail); i++ {
		if avail[i-1] && !avail[i] {
			n++
		}
	}
	return n
}

// Trainer is the training process driven by the simulator. Step runs
// one training iteration; Kill simulates the spot instance being
// reclaimed (process death, volatile state lost); Resume restarts the
// process (recovering whatever the implementation persists).
type Trainer interface {
	Step() (loss float32, err error)
	Kill()
	Resume() error
}

// StatePoint is one Fig. 10(b)/(d) state-curve sample.
type StatePoint struct {
	IntervalIdx int
	Running     bool
}

// Result summarises a spot training simulation.
type Result struct {
	// Iterations is the number of training iterations executed, totaled
	// across all (re)runs.
	Iterations int
	// Losses holds the loss of every executed iteration in order.
	Losses []float32
	// States is the instance state curve (Fig. 10 b/d).
	States []StatePoint
	// Interruptions counts kills that occurred before training
	// finished.
	Interruptions int
	// Completed reports whether TargetIters was reached within the
	// trace.
	Completed bool
}

// Config parameterises a simulation.
type Config struct {
	// MaxBid is the user's maximum bid price (paper: 0.0955).
	MaxBid float64
	// TargetIters ends the simulation when the trainer has run this
	// many iterations in total (paper: 500).
	TargetIters int
	// ItersPerInterval is how many training iterations fit in one
	// 5-minute interval when the instance runs.
	ItersPerInterval int
}

// Run drives the trainer through the trace. The trainer starts stopped;
// it is resumed at the first runnable interval.
func Run(t Trace, cfg Config, tr Trainer) (Result, error) {
	if len(t.Prices) == 0 {
		return Result{}, ErrEmptyTrace
	}
	if cfg.MaxBid <= 0 {
		return Result{}, ErrBadBid
	}
	if cfg.TargetIters <= 0 || cfg.ItersPerInterval <= 0 {
		return Result{}, fmt.Errorf("%w: target=%d per-interval=%d", ErrBadTrace, cfg.TargetIters, cfg.ItersPerInterval)
	}
	var res Result
	running := false
	for i, price := range t.Prices {
		shouldRun := cfg.MaxBid > price
		switch {
		case shouldRun && !running:
			if err := tr.Resume(); err != nil {
				return res, fmt.Errorf("resume at interval %d: %w", i, err)
			}
			running = true
		case !shouldRun && running:
			tr.Kill()
			running = false
			res.Interruptions++
		}
		res.States = append(res.States, StatePoint{IntervalIdx: i, Running: running})
		if !running {
			continue
		}
		for k := 0; k < cfg.ItersPerInterval && res.Iterations < cfg.TargetIters; k++ {
			loss, err := tr.Step()
			if err != nil {
				return res, fmt.Errorf("step at interval %d: %w", i, err)
			}
			res.Losses = append(res.Losses, loss)
			res.Iterations++
		}
		if res.Iterations >= cfg.TargetIters {
			res.Completed = true
			return res, nil
		}
	}
	return res, nil
}
