package spot

import (
	"os"
	"path/filepath"
	"testing"
)

// TestBundledTrace validates the repository's shipped spot trace (the
// paper: "The spot traces used and our simulation scripts are
// available in the PLINIUS repository").
func TestBundledTrace(t *testing.T) {
	f, err := os.Open(filepath.Join("..", "..", "testdata", "spot_trace.csv"))
	if err != nil {
		t.Fatalf("open bundled trace: %v", err)
	}
	defer f.Close()
	tr, err := ParseCSV(f)
	if err != nil {
		t.Fatalf("ParseCSV: %v", err)
	}
	if len(tr.Prices) != 160 {
		t.Fatalf("bundled trace has %d points, want 160", len(tr.Prices))
	}
	// The paper's Fig. 10(b) scenario: exactly two interruptions at
	// the 0.0955 bid.
	if got := tr.Interruptions(0.0955); got != 2 {
		t.Fatalf("bundled trace yields %d interruptions at the paper's bid, want 2", got)
	}
	for i, p := range tr.Prices {
		if p <= 0 || p > 1 {
			t.Fatalf("price %d out of range: %f", i, p)
		}
	}
}
