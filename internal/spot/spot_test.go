package spot

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestSyntheticDeterministicAndPositive(t *testing.T) {
	a := Synthetic(200, 0.09, 0.01, 42)
	b := Synthetic(200, 0.09, 0.01, 42)
	if len(a.Prices) != 200 {
		t.Fatalf("got %d points", len(a.Prices))
	}
	for i := range a.Prices {
		if a.Prices[i] != b.Prices[i] {
			t.Fatal("same seed, different trace")
		}
		if a.Prices[i] <= 0 {
			t.Fatalf("non-positive price at %d", i)
		}
	}
}

func TestSyntheticHasSpikesAboveBase(t *testing.T) {
	tr := Synthetic(500, 0.09, 0.01, 7)
	spikes := 0
	for _, p := range tr.Prices {
		if p > 0.0955 {
			spikes++
		}
	}
	if spikes == 0 {
		t.Fatal("trace never exceeds the paper's bid; simulation would be trivial")
	}
	if spikes > 250 {
		t.Fatalf("trace above bid %d/500 of the time; instance barely runs", spikes)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := Synthetic(50, 0.09, 0.01, 3)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ParseCSV(&buf)
	if err != nil {
		t.Fatalf("ParseCSV: %v", err)
	}
	if len(got.Prices) != 50 {
		t.Fatalf("round trip lost points: %d", len(got.Prices))
	}
	for i := range tr.Prices {
		diff := got.Prices[i] - tr.Prices[i]
		if diff < -1e-6 || diff > 1e-6 {
			t.Fatalf("price %d: %f vs %f", i, got.Prices[i], tr.Prices[i])
		}
	}
}

func TestParseCSVErrors(t *testing.T) {
	if _, err := ParseCSV(strings.NewReader("")); !errors.Is(err, ErrEmptyTrace) {
		t.Fatalf("empty = %v, want ErrEmptyTrace", err)
	}
	if _, err := ParseCSV(strings.NewReader("justonefield\n")); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("one field = %v, want ErrBadTrace", err)
	}
	if _, err := ParseCSV(strings.NewReader("0,notanumber\n")); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("bad number = %v, want ErrBadTrace", err)
	}
	got, err := ParseCSV(strings.NewReader("# comment\n0,0.05\n\n5,0.06\n"))
	if err != nil {
		t.Fatalf("comments: %v", err)
	}
	if len(got.Prices) != 2 {
		t.Fatalf("got %d points, want 2", len(got.Prices))
	}
}

func TestAvailabilityAndInterruptions(t *testing.T) {
	tr := Trace{Prices: []float64{0.05, 0.05, 0.12, 0.12, 0.05, 0.12, 0.05}}
	avail := tr.Availability(0.0955)
	want := []bool{true, true, false, false, true, false, true}
	for i := range want {
		if avail[i] != want[i] {
			t.Fatalf("avail[%d] = %v, want %v", i, avail[i], want[i])
		}
	}
	if got := tr.Interruptions(0.0955); got != 2 {
		t.Fatalf("Interruptions = %d, want 2", got)
	}
}

// fakeTrainer counts protocol calls and simulates crash-resilient or
// restart-from-scratch behaviour.
type fakeTrainer struct {
	resilient bool
	progress  int // persisted iterations (survives Kill when resilient)
	volatile  int // in-memory progress
	kills     int
	resumes   int
	stepErr   error
}

func (f *fakeTrainer) Step() (float32, error) {
	if f.stepErr != nil {
		return 0, f.stepErr
	}
	f.volatile++
	f.progress = f.volatile
	// Loss decays with volatile progress (a fresh restart re-learns).
	return 1 / float32(f.volatile+1), nil
}

func (f *fakeTrainer) Kill() {
	f.kills++
	if !f.resilient {
		f.volatile = 0
	}
}

func (f *fakeTrainer) Resume() error {
	f.resumes++
	if f.resilient {
		f.volatile = f.progress
	}
	return nil
}

func TestRunCompletesWithoutInterruption(t *testing.T) {
	tr := Trace{Prices: []float64{0.05, 0.05, 0.05, 0.05}}
	ft := &fakeTrainer{resilient: true}
	res, err := Run(tr, Config{MaxBid: 0.0955, TargetIters: 10, ItersPerInterval: 5}, ft)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Completed || res.Iterations != 10 {
		t.Fatalf("completed=%v iters=%d", res.Completed, res.Iterations)
	}
	if res.Interruptions != 0 || ft.kills != 0 {
		t.Fatalf("unexpected interruptions: %d/%d", res.Interruptions, ft.kills)
	}
	if ft.resumes != 1 {
		t.Fatalf("resumes = %d, want 1", ft.resumes)
	}
	if len(res.Losses) != 10 {
		t.Fatalf("loss curve has %d points", len(res.Losses))
	}
}

func TestRunKillsAndResumesAcrossSpikes(t *testing.T) {
	tr := Trace{Prices: []float64{0.05, 0.12, 0.05, 0.12, 0.05, 0.05}}
	ft := &fakeTrainer{resilient: true}
	res, err := Run(tr, Config{MaxBid: 0.0955, TargetIters: 100, ItersPerInterval: 10}, ft)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Interruptions != 2 || ft.kills != 2 || ft.resumes != 3 {
		t.Fatalf("interruptions=%d kills=%d resumes=%d", res.Interruptions, ft.kills, ft.resumes)
	}
	// 4 runnable intervals x 10 iters = 40 < target.
	if res.Completed || res.Iterations != 40 {
		t.Fatalf("completed=%v iters=%d", res.Completed, res.Iterations)
	}
	// State curve must reflect the availability pattern.
	wantRunning := []bool{true, false, true, false, true, true}
	for i, sp := range res.States {
		if sp.Running != wantRunning[i] {
			t.Fatalf("state[%d] = %v, want %v", i, sp.Running, wantRunning[i])
		}
	}
}

func TestResilientFinishesWithFewerTotalIterations(t *testing.T) {
	// Fig. 10(a) vs (c): the non-resilient run restarts from scratch
	// after each interruption, so reaching the same learning progress
	// takes more total iterations. With the fakeTrainer, progress is
	// the volatile counter; we compare the final volatile progress.
	tr := Trace{Prices: []float64{0.05, 0.05, 0.12, 0.05, 0.05, 0.12, 0.05, 0.05, 0.05}}
	cfg := Config{MaxBid: 0.0955, TargetIters: 1000, ItersPerInterval: 10}

	resilient := &fakeTrainer{resilient: true}
	if _, err := Run(tr, cfg, resilient); err != nil {
		t.Fatalf("Run resilient: %v", err)
	}
	fresh := &fakeTrainer{resilient: false}
	if _, err := Run(tr, cfg, fresh); err != nil {
		t.Fatalf("Run fresh: %v", err)
	}
	if resilient.volatile <= fresh.volatile {
		t.Fatalf("resilient progress %d <= non-resilient %d", resilient.volatile, fresh.volatile)
	}
}

func TestRunValidatesConfig(t *testing.T) {
	tr := Trace{Prices: []float64{0.05}}
	ft := &fakeTrainer{}
	if _, err := Run(Trace{}, Config{MaxBid: 1, TargetIters: 1, ItersPerInterval: 1}, ft); !errors.Is(err, ErrEmptyTrace) {
		t.Fatalf("empty trace = %v", err)
	}
	if _, err := Run(tr, Config{MaxBid: 0, TargetIters: 1, ItersPerInterval: 1}, ft); !errors.Is(err, ErrBadBid) {
		t.Fatalf("zero bid = %v", err)
	}
	if _, err := Run(tr, Config{MaxBid: 1, TargetIters: 0, ItersPerInterval: 1}, ft); err == nil {
		t.Fatal("zero target accepted")
	}
}

func TestRunPropagatesStepError(t *testing.T) {
	tr := Trace{Prices: []float64{0.05}}
	boom := errors.New("boom")
	ft := &fakeTrainer{stepErr: boom}
	if _, err := Run(tr, Config{MaxBid: 1, TargetIters: 5, ItersPerInterval: 5}, ft); !errors.Is(err, boom) {
		t.Fatalf("Run = %v, want boom", err)
	}
}
