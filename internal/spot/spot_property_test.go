package spot

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: Interruptions always equals the number of true->false
// transitions in Availability, for any trace and bid.
func TestPropertyInterruptionsMatchAvailability(t *testing.T) {
	f := func(seed int64, bidRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		tr := Synthetic(n, 0.09, 0.01, seed)
		bid := 0.05 + float64(bidRaw)/255*0.1
		avail := tr.Availability(bid)
		want := 0
		for i := 1; i < len(avail); i++ {
			if avail[i-1] && !avail[i] {
				want++
			}
		}
		return tr.Interruptions(bid) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: WriteCSV followed by ParseCSV preserves every price within
// the serialisation precision.
func TestPropertyCSVRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		tr := Synthetic(n, 0.05+rng.Float64()*0.1, 0.01, seed)
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tr); err != nil {
			return false
		}
		got, err := ParseCSV(&buf)
		if err != nil {
			return false
		}
		if len(got.Prices) != n {
			return false
		}
		for i := range tr.Prices {
			d := got.Prices[i] - tr.Prices[i]
			if d < -1e-6 || d > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: under any bid, the run executes at most TargetIters steps
// and the state curve has one point per visited interval.
func TestPropertyRunBounds(t *testing.T) {
	f := func(seed int64, bidRaw uint8) bool {
		tr := Synthetic(30, 0.09, 0.01, seed)
		bid := 0.05 + float64(bidRaw)/255*0.1
		ft := &fakeTrainer{resilient: true}
		res, err := Run(tr, Config{MaxBid: bid, TargetIters: 20, ItersPerInterval: 3}, ft)
		if err != nil {
			return false
		}
		if res.Iterations > 20 || len(res.Losses) != res.Iterations {
			return false
		}
		return len(res.States) <= len(tr.Prices)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
