package romulus

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"plinius/internal/pm"
)

func newHeap(t *testing.T, size int) (*pm.Device, *Romulus) {
	t.Helper()
	dev, err := pm.New(size)
	if err != nil {
		t.Fatalf("pm.New: %v", err)
	}
	r, err := Open(dev)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return dev, r
}

func TestOpenFormatsFreshDevice(t *testing.T) {
	_, r := newHeap(t, 64<<10)
	if r.Used() != reservedBytes {
		t.Fatalf("fresh heap used = %d, want %d", r.Used(), reservedBytes)
	}
	if r.RegionSize() <= 0 {
		t.Fatal("non-positive region size")
	}
}

func TestOpenRejectsTinyDevice(t *testing.T) {
	dev, err := pm.New(pm.CacheLineSize)
	if err != nil {
		t.Fatalf("pm.New: %v", err)
	}
	if _, err := Open(dev); !errors.Is(err, ErrRegionTooSmall) {
		t.Fatalf("Open tiny = %v, want ErrRegionTooSmall", err)
	}
}

func TestCommittedDataSurvivesCrashAndReopen(t *testing.T) {
	dev, r := newHeap(t, 64<<10)
	var off int
	want := []byte("committed payload")
	if err := r.Update(func() error {
		o, err := r.Alloc(len(want))
		if err != nil {
			return err
		}
		off = o
		return r.Store(off, want)
	}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	dev.Crash()
	r2, err := Open(dev)
	if err != nil {
		t.Fatalf("re-Open: %v", err)
	}
	got := make([]byte, len(want))
	if err := r2.Load(off, got); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("after crash got %q, want %q", got, want)
	}
	if r2.Used() != r.Used() {
		t.Fatalf("allocator cursor lost: %d vs %d", r2.Used(), r.Used())
	}
}

func TestStoreRequiresTransaction(t *testing.T) {
	_, r := newHeap(t, 64<<10)
	if err := r.Store(reservedBytes, []byte("x")); !errors.Is(err, ErrNoTransaction) {
		t.Fatalf("Store outside tx = %v, want ErrNoTransaction", err)
	}
	if _, err := r.Alloc(8); !errors.Is(err, ErrNoTransaction) {
		t.Fatalf("Alloc outside tx = %v, want ErrNoTransaction", err)
	}
	if err := r.Commit(); !errors.Is(err, ErrNoTransaction) {
		t.Fatalf("Commit outside tx = %v, want ErrNoTransaction", err)
	}
	if err := r.Abort(); !errors.Is(err, ErrNoTransaction) {
		t.Fatalf("Abort outside tx = %v, want ErrNoTransaction", err)
	}
}

func TestNestedBeginRejected(t *testing.T) {
	_, r := newHeap(t, 64<<10)
	if err := r.Begin(); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := r.Begin(); !errors.Is(err, ErrNestedTx) {
		t.Fatalf("nested Begin = %v, want ErrNestedTx", err)
	}
	if err := r.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

func TestStoreBoundsChecked(t *testing.T) {
	_, r := newHeap(t, 64<<10)
	if err := r.Begin(); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	defer func() {
		if err := r.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}()
	if err := r.Store(r.RegionSize(), []byte("x")); !errors.Is(err, ErrBadOffset) {
		t.Fatalf("out-of-region Store = %v, want ErrBadOffset", err)
	}
	if err := r.Store(-1, []byte("x")); !errors.Is(err, ErrBadOffset) {
		t.Fatalf("negative Store = %v, want ErrBadOffset", err)
	}
}

func TestAbortRollsBack(t *testing.T) {
	_, r := newHeap(t, 64<<10)
	var off int
	if err := r.Update(func() error {
		o, err := r.Alloc(8)
		if err != nil {
			return err
		}
		off = o
		return r.StoreUint64(off, 111)
	}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	usedBefore := r.Used()
	failure := errors.New("application error")
	err := r.Update(func() error {
		if err := r.StoreUint64(off, 999); err != nil {
			return err
		}
		if _, err := r.Alloc(64); err != nil {
			return err
		}
		return failure
	})
	if !errors.Is(err, failure) {
		t.Fatalf("Update = %v, want application error", err)
	}
	got, err := r.LoadUint64(off)
	if err != nil {
		t.Fatalf("LoadUint64: %v", err)
	}
	if got != 111 {
		t.Fatalf("aborted store visible: %d", got)
	}
	if r.Used() != usedBefore {
		t.Fatalf("aborted alloc leaked: used %d -> %d", usedBefore, r.Used())
	}
}

func TestRootsPersist(t *testing.T) {
	dev, r := newHeap(t, 64<<10)
	if err := r.Update(func() error {
		off, err := r.Alloc(128)
		if err != nil {
			return err
		}
		return r.SetRoot(2, off)
	}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	want, err := r.Root(2)
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	dev.Crash()
	r2, err := Open(dev)
	if err != nil {
		t.Fatalf("re-Open: %v", err)
	}
	got, err := r2.Root(2)
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	if got != want || got == 0 {
		t.Fatalf("root after crash = %d, want %d", got, want)
	}
}

func TestRootIndexValidated(t *testing.T) {
	_, r := newHeap(t, 64<<10)
	if _, err := r.Root(-1); !errors.Is(err, ErrBadRoot) {
		t.Fatalf("Root(-1) = %v, want ErrBadRoot", err)
	}
	if _, err := r.Root(NumRoots); !errors.Is(err, ErrBadRoot) {
		t.Fatalf("Root(max) = %v, want ErrBadRoot", err)
	}
}

func TestAllocExhaustion(t *testing.T) {
	_, r := newHeap(t, 8<<10)
	err := r.Update(func() error {
		_, err := r.Alloc(r.RegionSize())
		return err
	})
	if !errors.Is(err, ErrOutOfSpace) {
		t.Fatalf("oversized Alloc = %v, want ErrOutOfSpace", err)
	}
	if err := r.Update(func() error {
		_, err := r.Alloc(0)
		return err
	}); !errors.Is(err, ErrAllocNonPositive) {
		t.Fatalf("zero Alloc = %v, want ErrAllocNonPositive", err)
	}
}

func TestAllocAlignment(t *testing.T) {
	_, r := newHeap(t, 64<<10)
	if err := r.Update(func() error {
		a, err := r.Alloc(3)
		if err != nil {
			return err
		}
		b, err := r.Alloc(8)
		if err != nil {
			return err
		}
		if a%AllocAlign != 0 || b%AllocAlign != 0 {
			t.Errorf("unaligned offsets: %d %d", a, b)
		}
		if b-a < 8 {
			t.Errorf("allocations overlap: %d %d", a, b)
		}
		return nil
	}); err != nil {
		t.Fatalf("Update: %v", err)
	}
}

func TestFourFencesPerTransaction(t *testing.T) {
	dev, r := newHeap(t, 64<<10)
	before := dev.Stats().Fences
	if err := r.Update(func() error {
		off, err := r.Alloc(64)
		if err != nil {
			return err
		}
		return r.Store(off, make([]byte, 64))
	}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	got := dev.Stats().Fences - before
	if got != 4 {
		t.Fatalf("transaction used %d fences, want 4 (Romulus invariant)", got)
	}
}

// TestCrashDuringCommitEveryStep exercises every injected crash point in
// a transaction and verifies recovery always lands in one of the two
// legal states: all-old or all-new.
func TestCrashDuringCommitEveryStep(t *testing.T) {
	const payload = 256
	oldData := bytes.Repeat([]byte{0xAA}, payload)
	newData := bytes.Repeat([]byte{0x55}, payload)

	for crashPoint := 1; crashPoint < 20; crashPoint++ {
		dev, err := pm.New(64 << 10)
		if err != nil {
			t.Fatalf("pm.New: %v", err)
		}
		r, err := Open(dev)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		var off int
		if err := r.Update(func() error {
			o, err := r.Alloc(payload)
			if err != nil {
				return err
			}
			off = o
			return r.Store(off, oldData)
		}); err != nil {
			t.Fatalf("seed Update: %v", err)
		}

		r.SetCrashPoint(crashPoint)
		err = r.Update(func() error {
			return r.Store(off, newData)
		})
		if err == nil {
			// Crash point beyond the transaction's steps: committed.
			got := make([]byte, payload)
			if err := r.Load(off, got); err != nil {
				t.Fatalf("Load: %v", err)
			}
			if !bytes.Equal(got, newData) {
				t.Fatalf("crashPoint=%d: committed tx lost data", crashPoint)
			}
			continue
		}
		if !errors.Is(err, ErrCrashInjected) {
			t.Fatalf("crashPoint=%d: unexpected error %v", crashPoint, err)
		}
		r2, err := Open(dev)
		if err != nil {
			t.Fatalf("crashPoint=%d: recovery Open: %v", crashPoint, err)
		}
		got := make([]byte, payload)
		if err := r2.Load(off, got); err != nil {
			t.Fatalf("crashPoint=%d: Load: %v", crashPoint, err)
		}
		if !bytes.Equal(got, oldData) && !bytes.Equal(got, newData) {
			t.Fatalf("crashPoint=%d: recovered torn state %x...", crashPoint, got[:8])
		}
	}
}

// TestPropertyCrashConsistency drives random multi-store transactions
// with random crash points; after recovery the heap must equal either
// the pre-transaction or the post-transaction image.
func TestPropertyCrashConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dev, err := pm.New(64 << 10)
		if err != nil {
			return false
		}
		r, err := Open(dev)
		if err != nil {
			return false
		}
		// Seed: allocate an area and fill deterministically.
		const area = 1024
		var off int
		oldImg := make([]byte, area)
		rng.Read(oldImg)
		if err := r.Update(func() error {
			o, err := r.Alloc(area)
			if err != nil {
				return err
			}
			off = o
			return r.Store(off, oldImg)
		}); err != nil {
			return false
		}
		// Build the new image via 1-8 random range stores.
		newImg := append([]byte(nil), oldImg...)
		type rangeStore struct {
			at   int
			data []byte
		}
		stores := make([]rangeStore, 1+rng.Intn(8))
		for i := range stores {
			at := rng.Intn(area - 64)
			n := 1 + rng.Intn(64)
			data := make([]byte, n)
			rng.Read(data)
			stores[i] = rangeStore{at: at, data: data}
			copy(newImg[at:], data)
		}
		r.SetCrashPoint(1 + rng.Intn(25))
		err = r.Update(func() error {
			for _, s := range stores {
				if err := r.Store(off+s.at, s.data); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil && !errors.Is(err, ErrCrashInjected) {
			return false
		}
		r2, err := Open(dev)
		if err != nil {
			return false
		}
		got := make([]byte, area)
		if err := r2.Load(off, got); err != nil {
			return false
		}
		return bytes.Equal(got, oldImg) || bytes.Equal(got, newImg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadUint64RoundTrip(t *testing.T) {
	_, r := newHeap(t, 64<<10)
	var off int
	if err := r.Update(func() error {
		o, err := r.Alloc(8)
		if err != nil {
			return err
		}
		off = o
		return r.StoreUint64(off, 0xDEADBEEF)
	}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	got, err := r.LoadUint64(off)
	if err != nil {
		t.Fatalf("LoadUint64: %v", err)
	}
	if got != 0xDEADBEEF {
		t.Fatalf("LoadUint64 = %#x", got)
	}
}

func TestReopenWithoutCrashKeepsState(t *testing.T) {
	dev, r := newHeap(t, 64<<10)
	var off int
	if err := r.Update(func() error {
		o, err := r.Alloc(16)
		if err != nil {
			return err
		}
		off = o
		return r.Store(off, []byte("0123456789abcdef"))
	}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	r2, err := Open(dev)
	if err != nil {
		t.Fatalf("re-Open: %v", err)
	}
	got := make([]byte, 16)
	if err := r2.Load(off, got); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if string(got) != "0123456789abcdef" {
		t.Fatalf("reopened heap lost data: %q", got)
	}
}

func TestCorruptUsedCursorDetected(t *testing.T) {
	dev, r := newHeap(t, 64<<10)
	_ = r
	// Corrupt the allocator cursor directly on the device (bypassing
	// transactions) and flush it so it survives reopen.
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], 1<<60)
	if err := dev.Store(headerSize+usedOffset, buf[:]); err != nil {
		t.Fatalf("Store: %v", err)
	}
	if err := dev.Flush(headerSize+usedOffset, 8, pm.FlushClflushOpt); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if _, err := Open(dev); !errors.Is(err, ErrCorruptHeader) {
		t.Fatalf("Open corrupt = %v, want ErrCorruptHeader", err)
	}
}
