package romulus

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"

	"plinius/internal/pm"
)

// SPS (swaps per second) is the micro-benchmark the paper uses to
// compare PM libraries (Fig. 6): an integer array lives in PM and each
// transaction randomly swaps SwapsPerTx pairs.

// SPSConfig parameterises one SPS run.
type SPSConfig struct {
	// ArrayBytes is the persistent array size (paper: 10 MB).
	ArrayBytes int
	// SwapsPerTx is the transaction size (paper: 2..2048).
	SwapsPerTx int
	// Transactions is how many transactions to execute.
	Transactions int
	// Seed drives the swap positions deterministically.
	Seed int64
}

// SPSResult is one Fig. 6 data point.
type SPSResult struct {
	Config       SPSConfig
	Swaps        int
	SwapsPerUs   float64
	ElapsedSimNs int64
}

// RunSPS executes the benchmark on an already-opened Romulus heap and
// reports throughput against the device's modeled clock.
func RunSPS(r *Romulus, cfg SPSConfig) (SPSResult, error) {
	if cfg.ArrayBytes < 16 || cfg.SwapsPerTx <= 0 || cfg.Transactions <= 0 {
		return SPSResult{}, errors.New("romulus: invalid SPS config")
	}
	elems := cfg.ArrayBytes / 8
	var arrOff int
	if err := r.Update(func() error {
		off, err := r.Alloc(elems * 8)
		if err != nil {
			return err
		}
		arrOff = off
		// Initialise the array with its indices in bulk.
		buf := make([]byte, elems*8)
		for i := 0; i < elems; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], uint64(i))
		}
		return r.Store(arrOff, buf)
	}); err != nil {
		return SPSResult{}, fmt.Errorf("sps init: %w", err)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	clk := r.Device().Clock()
	start := clk.Modeled()
	for t := 0; t < cfg.Transactions; t++ {
		if err := r.Update(func() error {
			for s := 0; s < cfg.SwapsPerTx; s++ {
				i := rng.Intn(elems)
				j := rng.Intn(elems)
				a, err := r.LoadUint64(arrOff + 8*i)
				if err != nil {
					return err
				}
				b, err := r.LoadUint64(arrOff + 8*j)
				if err != nil {
					return err
				}
				if err := r.StoreUint64(arrOff+8*i, b); err != nil {
					return err
				}
				if err := r.StoreUint64(arrOff+8*j, a); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return SPSResult{}, fmt.Errorf("sps tx %d: %w", t, err)
		}
	}
	elapsed := clk.Modeled() - start
	swaps := cfg.Transactions * cfg.SwapsPerTx
	us := float64(elapsed.Nanoseconds()) / 1e3
	res := SPSResult{
		Config:       cfg,
		Swaps:        swaps,
		ElapsedSimNs: elapsed.Nanoseconds(),
	}
	if us > 0 {
		res.SwapsPerUs = float64(swaps) / us
	}
	return res, nil
}

// SPSSweep runs Fig. 6's grid for one environment and flush kind,
// returning one result per transaction size.
func SPSSweep(env Env, kind pm.FlushKind, swapsPerTx []int, txPerPoint int) ([]SPSResult, error) {
	out := make([]SPSResult, 0, len(swapsPerTx))
	for _, sw := range swapsPerTx {
		dev, err := pm.New(32 << 20)
		if err != nil {
			return nil, err
		}
		r, err := Open(dev, WithEnv(env), WithFlushKind(kind))
		if err != nil {
			return nil, err
		}
		res, err := RunSPS(r, SPSConfig{
			ArrayBytes:   10 << 20,
			SwapsPerTx:   sw,
			Transactions: txPerPoint,
			Seed:         42,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}
