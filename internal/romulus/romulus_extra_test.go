package romulus

import (
	"bytes"
	"testing"

	"plinius/internal/pm"
)

func TestSequentialTransactionsAccumulate(t *testing.T) {
	dev, r := newHeap(t, 64<<10)
	var offs []int
	for i := 0; i < 10; i++ {
		if err := r.Update(func() error {
			off, err := r.Alloc(8)
			if err != nil {
				return err
			}
			offs = append(offs, off)
			return r.StoreUint64(off, uint64(i*i))
		}); err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
	}
	dev.Crash()
	r2, err := Open(dev)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	for i, off := range offs {
		got, err := r2.LoadUint64(off)
		if err != nil {
			t.Fatalf("LoadUint64: %v", err)
		}
		if got != uint64(i*i) {
			t.Fatalf("tx %d value = %d, want %d", i, got, i*i)
		}
	}
}

func TestRecoverIdempotent(t *testing.T) {
	dev, r := newHeap(t, 64<<10)
	var off int
	if err := r.Update(func() error {
		o, err := r.Alloc(16)
		if err != nil {
			return err
		}
		off = o
		return r.Store(off, []byte("stable state ..."))
	}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	// Recover repeatedly without a crash: state must not change.
	for i := 0; i < 3; i++ {
		if err := r.Recover(); err != nil {
			t.Fatalf("Recover %d: %v", i, err)
		}
	}
	got := make([]byte, 16)
	if err := r.Load(off, got); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !bytes.Equal(got, []byte("stable state ...")) {
		t.Fatalf("state changed under repeated recovery: %q", got)
	}
	_ = dev
}

func TestAllTransactionFlushKinds(t *testing.T) {
	for _, kind := range []pm.FlushKind{pm.FlushClflush, pm.FlushClflushOpt, pm.FlushCLWB} {
		t.Run(kind.String(), func(t *testing.T) {
			dev, err := pm.New(64 << 10)
			if err != nil {
				t.Fatalf("pm.New: %v", err)
			}
			r, err := Open(dev, WithFlushKind(kind))
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			var off int
			if err := r.Update(func() error {
				o, err := r.Alloc(32)
				if err != nil {
					return err
				}
				off = o
				return r.Store(off, bytes.Repeat([]byte{0x5A}, 32))
			}); err != nil {
				t.Fatalf("Update: %v", err)
			}
			dev.Crash()
			r2, err := Open(dev, WithFlushKind(kind))
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			got := make([]byte, 32)
			if err := r2.Load(off, got); err != nil {
				t.Fatalf("Load: %v", err)
			}
			if !bytes.Equal(got, bytes.Repeat([]byte{0x5A}, 32)) {
				t.Fatalf("%s: data lost", kind)
			}
		})
	}
}

func TestLoadBoundsOutsideTx(t *testing.T) {
	_, r := newHeap(t, 64<<10)
	if err := r.Load(r.RegionSize(), make([]byte, 1)); err == nil {
		t.Fatal("out-of-region Load succeeded")
	}
	if err := r.Load(-1, make([]byte, 1)); err == nil {
		t.Fatal("negative Load succeeded")
	}
}

func TestUpdateAbortsOnCallbackError(t *testing.T) {
	_, r := newHeap(t, 64<<10)
	if err := r.Update(func() error { return pm.ErrOutOfRange }); err == nil {
		t.Fatal("Update swallowed error")
	}
	if r.InTx() {
		t.Fatal("transaction left open after failed Update")
	}
	// The heap is still usable.
	if err := r.Update(func() error {
		_, err := r.Alloc(8)
		return err
	}); err != nil {
		t.Fatalf("follow-up Update: %v", err)
	}
}

func TestEnvCostsMonotone(t *testing.T) {
	// Same workload, increasing environment multipliers => increasing
	// modeled time.
	run := func(env Env) int64 {
		dev, err := pm.New(1 << 20)
		if err != nil {
			t.Fatalf("pm.New: %v", err)
		}
		r, err := Open(dev, WithEnv(env))
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		res, err := RunSPS(r, SPSConfig{ArrayBytes: 64 << 10, SwapsPerTx: 32, Transactions: 10, Seed: 3})
		if err != nil {
			t.Fatalf("RunSPS: %v", err)
		}
		return res.ElapsedSimNs
	}
	native := run(NativeEnv())
	sgx := run(SGXEnv())
	if sgx <= native {
		t.Fatalf("SGX env (%d ns) not slower than native (%d ns)", sgx, native)
	}
}

func TestStatsFourFencesScaleWithTransactions(t *testing.T) {
	dev, r := newHeap(t, 64<<10)
	before := dev.Stats().Fences
	const txs = 7
	for i := 0; i < txs; i++ {
		if err := r.Update(func() error {
			off, err := r.Alloc(8)
			if err != nil {
				return err
			}
			return r.StoreUint64(off, 1)
		}); err != nil {
			t.Fatalf("Update: %v", err)
		}
	}
	got := dev.Stats().Fences - before
	if got != 4*txs {
		t.Fatalf("%d transactions used %d fences, want %d", txs, got, 4*txs)
	}
}
