package romulus

import (
	"testing"

	"plinius/internal/pm"
)

func runSPSPoint(t *testing.T, env Env, kind pm.FlushKind, swaps int) SPSResult {
	t.Helper()
	dev, err := pm.New(32 << 20)
	if err != nil {
		t.Fatalf("pm.New: %v", err)
	}
	r, err := Open(dev, WithEnv(env), WithFlushKind(kind))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	res, err := RunSPS(r, SPSConfig{
		ArrayBytes:   1 << 20,
		SwapsPerTx:   swaps,
		Transactions: 20,
		Seed:         7,
	})
	if err != nil {
		t.Fatalf("RunSPS: %v", err)
	}
	return res
}

func TestSPSRejectsInvalidConfig(t *testing.T) {
	_, r := newHeap(t, 1<<20)
	if _, err := RunSPS(r, SPSConfig{ArrayBytes: 8, SwapsPerTx: 1, Transactions: 1}); err == nil {
		t.Fatal("tiny array accepted")
	}
	if _, err := RunSPS(r, SPSConfig{ArrayBytes: 1024, SwapsPerTx: 0, Transactions: 1}); err == nil {
		t.Fatal("zero swaps accepted")
	}
}

func TestSPSDeterministicUnderSeed(t *testing.T) {
	a := runSPSPoint(t, NativeEnv(), pm.FlushClflushOpt, 16)
	b := runSPSPoint(t, NativeEnv(), pm.FlushClflushOpt, 16)
	if a.ElapsedSimNs != b.ElapsedSimNs {
		t.Fatalf("same seed, different modeled time: %d vs %d", a.ElapsedSimNs, b.ElapsedSimNs)
	}
}

func TestSPSNativeFasterThanSGX(t *testing.T) {
	// Paper: SGX-Romulus fences take 1.6x-3.7x longer than native.
	for _, swaps := range []int{2, 64, 1024} {
		native := runSPSPoint(t, NativeEnv(), pm.FlushClflushOpt, swaps)
		sgx := runSPSPoint(t, SGXEnv(), pm.FlushClflushOpt, swaps)
		if native.SwapsPerUs <= sgx.SwapsPerUs {
			t.Fatalf("swaps=%d: native %.3f <= sgx %.3f swaps/us", swaps, native.SwapsPerUs, sgx.SwapsPerUs)
		}
		ratio := native.SwapsPerUs / sgx.SwapsPerUs
		if ratio < 1.1 || ratio > 5 {
			t.Fatalf("swaps=%d: native/sgx ratio %.2f outside plausible band", swaps, ratio)
		}
	}
}

func TestSPSSconeCrossover(t *testing.T) {
	// Paper Fig. 6 shape: SCONE beats SGX-Romulus for small
	// transactions (2-64 swaps/tx) but collapses beyond 64 swaps/tx,
	// where SGX-Romulus becomes 1.6x-6.9x faster.
	small := 16
	sgxSmall := runSPSPoint(t, SGXEnv(), pm.FlushClflushOpt, small)
	sconeSmall := runSPSPoint(t, SconeEnv(), pm.FlushClflushOpt, small)
	if sconeSmall.SwapsPerUs <= sgxSmall.SwapsPerUs {
		t.Fatalf("small tx: scone %.3f <= sgx %.3f swaps/us",
			sconeSmall.SwapsPerUs, sgxSmall.SwapsPerUs)
	}

	large := 1024
	sgxLarge := runSPSPoint(t, SGXEnv(), pm.FlushClflushOpt, large)
	sconeLarge := runSPSPoint(t, SconeEnv(), pm.FlushClflushOpt, large)
	if sgxLarge.SwapsPerUs <= sconeLarge.SwapsPerUs {
		t.Fatalf("large tx: sgx %.3f <= scone %.3f swaps/us",
			sgxLarge.SwapsPerUs, sconeLarge.SwapsPerUs)
	}
	ratio := sgxLarge.SwapsPerUs / sconeLarge.SwapsPerUs
	if ratio < 1.2 || ratio > 10 {
		t.Fatalf("large tx sgx/scone ratio %.2f outside the paper's 1.6-6.9 neighbourhood", ratio)
	}
}

func TestSPSClflushSlowerThanClflushopt(t *testing.T) {
	opt := runSPSPoint(t, NativeEnv(), pm.FlushClflushOpt, 64)
	flush := runSPSPoint(t, NativeEnv(), pm.FlushClflush, 64)
	if flush.SwapsPerUs >= opt.SwapsPerUs {
		t.Fatalf("clflush %.3f >= clflushopt %.3f swaps/us", flush.SwapsPerUs, opt.SwapsPerUs)
	}
}

func TestSPSSweepShape(t *testing.T) {
	res, err := SPSSweep(NativeEnv(), pm.FlushClflushOpt, []int{2, 8, 32}, 5)
	if err != nil {
		t.Fatalf("SPSSweep: %v", err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d points, want 3", len(res))
	}
	// Throughput should rise with transaction size: fixed per-tx fences
	// amortise over more swaps.
	if !(res[0].SwapsPerUs < res[1].SwapsPerUs && res[1].SwapsPerUs < res[2].SwapsPerUs) {
		t.Fatalf("throughput not rising with tx size: %.3f %.3f %.3f",
			res[0].SwapsPerUs, res[1].SwapsPerUs, res[2].SwapsPerUs)
	}
}
