// Package romulus implements SGX-Romulus, the Plinius port of the
// Romulus persistent-memory library (Correia, Felber, Ramalhete —
// SPAA'18) used for durable transactions on emulated PM.
//
// Romulus keeps twin copies of the user data in PM: the main region,
// mutated in place by transactions, and the back region, a snapshot of
// the last consistent state. A volatile redo log records the (offset,
// length) ranges a transaction modifies. Commit uses at most four
// persistence fences regardless of transaction size:
//
//	begin : state=MUTATING, pwb, fence            (1)
//	mutate: stores to main, pwb per store          — store interposition
//	commit: fence                                  (2)
//	        state=COPYING, pwb, fence              (3)
//	        copy logged ranges main→back, pwb each
//	        fence                                  (4)
//	        state=IDLE, pwb                        — ordered by next begin
//
// Recovery inspects the persistent state flag: MUTATING means main may
// be torn, so back (consistent) is restored over main; COPYING means
// main is consistent, so it is re-copied over back; IDLE needs nothing.
//
// The environment model (env.go) charges the extra costs of running the
// library natively, inside an SGX enclave (slower fences/write-backs),
// or unmodified inside a SCONE container (volatile-log memory pressure),
// reproducing the paper's Fig. 6 comparison.
package romulus

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"plinius/internal/pm"
)

// Persistent layout constants.
const (
	headerSize = pm.CacheLineSize // magic + state flag
	magic      = 0x504C4E53524D4C // "PLNSRML"

	// Reserved prefix of the main region: the allocator bump offset and
	// the root pointer table live inside main so the twin-copy protocol
	// protects them like any other persistent data.
	usedOffset    = 0
	rootOffset    = 8
	NumRoots      = 8
	reservedBytes = 2 * pm.CacheLineSize // 8B used + 8x8B roots, padded
)

// Transaction states persisted in the header.
const (
	stateIdle uint64 = iota
	stateMutating
	stateCopying
)

// Errors returned by Romulus operations.
var (
	ErrNoTransaction    = errors.New("romulus: operation requires an open transaction")
	ErrNestedTx         = errors.New("romulus: transaction already open")
	ErrOutOfSpace       = errors.New("romulus: persistent heap exhausted")
	ErrBadRoot          = errors.New("romulus: root index out of range")
	ErrRegionTooSmall   = errors.New("romulus: device too small for twin regions")
	ErrBadOffset        = errors.New("romulus: offset outside user heap")
	ErrCorruptHeader    = errors.New("romulus: persistent header is corrupt")
	errCrashPointHit    = errors.New("romulus: injected crash")
	ErrCrashInjected    = errCrashPointHit // exported alias for tests of callers
	ErrAllocNonPositive = errors.New("romulus: allocation size must be positive")
)

type logEntry struct {
	off int // main-region-relative offset
	n   int
}

// Romulus manages twin-copy durable transactions on one PM device. It is
// single-goroutine per the paper's single-threaded training loop; the
// underlying device is still race-safe.
type Romulus struct {
	dev        *pm.Device
	env        Env
	flushKind  pm.FlushKind
	regionSize int // size of each of main/back
	mainStart  int
	backStart  int
	log        []logEntry
	inTx       bool
	used       int // cached allocator offset (authoritative copy in PM)
	copyBuf    []byte

	// crashAt injects a device crash before the i-th commit step
	// (1-based); 0 disables. Used by crash-consistency tests.
	crashAt   int
	crashStep int
}

// Option configures a Romulus instance.
type Option func(*Romulus)

// WithEnv sets the execution environment cost model (default NativeEnv).
func WithEnv(e Env) Option {
	return func(r *Romulus) { r.env = e }
}

// WithFlushKind selects the persistent write-back flavour (default
// clflushopt, the paper's choice).
func WithFlushKind(k pm.FlushKind) Option {
	return func(r *Romulus) { r.flushKind = k }
}

// Open maps a Romulus heap onto the device, initialising it on first use
// and running recovery otherwise (paper Algorithm 1).
func Open(dev *pm.Device, opts ...Option) (*Romulus, error) {
	r := &Romulus{
		dev:       dev,
		env:       NativeEnv(),
		flushKind: pm.FlushClflushOpt,
	}
	for _, opt := range opts {
		opt(r)
	}
	usable := dev.Size() - headerSize
	r.regionSize = usable / 2 / pm.CacheLineSize * pm.CacheLineSize
	if r.regionSize <= reservedBytes {
		return nil, fmt.Errorf("%w: device %d bytes", ErrRegionTooSmall, dev.Size())
	}
	r.mainStart = headerSize
	r.backStart = headerSize + r.regionSize

	var hdr [16]byte
	if err := dev.Load(0, hdr[:]); err != nil {
		return nil, fmt.Errorf("read header: %w", err)
	}
	if binary.LittleEndian.Uint64(hdr[0:8]) != magic {
		if err := r.format(); err != nil {
			return nil, fmt.Errorf("format: %w", err)
		}
	} else if err := r.Recover(); err != nil {
		return nil, fmt.Errorf("recover: %w", err)
	}
	if err := r.loadUsed(); err != nil {
		return nil, err
	}
	return r, nil
}

// format initialises an empty heap: both regions consistent and empty.
func (r *Romulus) format() error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(reservedBytes))
	// used = reservedBytes in both main and back; roots zero already.
	if err := r.dev.Store(r.mainStart+usedOffset, buf[:]); err != nil {
		return err
	}
	if err := r.dev.Store(r.backStart+usedOffset, buf[:]); err != nil {
		return err
	}
	if err := r.dev.Flush(r.mainStart, reservedBytes, r.flushKind); err != nil {
		return err
	}
	if err := r.dev.Flush(r.backStart, reservedBytes, r.flushKind); err != nil {
		return err
	}
	if err := r.writeState(stateIdle); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], magic)
	if err := r.dev.Store(0, hdr[:]); err != nil {
		return err
	}
	if err := r.dev.Flush(0, 8, r.flushKind); err != nil {
		return err
	}
	r.fence()
	return nil
}

func (r *Romulus) loadUsed() error {
	var buf [8]byte
	if err := r.dev.Load(r.mainStart+usedOffset, buf[:]); err != nil {
		return err
	}
	used := binary.LittleEndian.Uint64(buf[:])
	if used < reservedBytes || used > uint64(r.regionSize) {
		return fmt.Errorf("%w: used=%d", ErrCorruptHeader, used)
	}
	r.used = int(used)
	return nil
}

// state helpers -------------------------------------------------------

func (r *Romulus) writeState(s uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], s)
	if err := r.dev.Store(8, buf[:]); err != nil {
		return err
	}
	return r.flush(8, 8)
}

func (r *Romulus) readState() (uint64, error) {
	var buf [8]byte
	if err := r.dev.Load(8, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

// cost-model wrappers --------------------------------------------------

func (r *Romulus) flush(off, n int) error {
	if err := r.dev.Flush(off, n, r.flushKind); err != nil {
		return err
	}
	r.chargeFlushExtra(n)
	return nil
}

func (r *Romulus) fence() {
	r.dev.Fence()
	r.chargeFenceExtra()
}

func (r *Romulus) chargeFlushExtra(n int) {
	if r.env.FlushMult <= 1 {
		return
	}
	lines := (n + pm.CacheLineSize - 1) / pm.CacheLineSize
	base := r.dev.Profile()
	var per time.Duration
	switch r.flushKind {
	case pm.FlushClflush:
		per = base.Clflush
	case pm.FlushCLWB:
		per = base.CLWB
	default:
		per = base.ClflushOpt
	}
	r.dev.Clock().Advance(time.Duration(float64(lines) * float64(per) * (r.env.FlushMult - 1)))
}

func (r *Romulus) chargeFenceExtra() {
	if r.env.FenceMult <= 1 {
		return
	}
	base := r.dev.Profile().Fence
	r.dev.Clock().Advance(time.Duration(float64(base) * (r.env.FenceMult - 1)))
}

// crash injection -------------------------------------------------------

// SetCrashPoint arms a crash before the n-th commit step (1-based across
// Begin/Store/Commit sub-steps). Used by crash-consistency tests; a
// crashed Romulus must be re-Opened on the same device.
func (r *Romulus) SetCrashPoint(n int) {
	r.crashAt = n
	r.crashStep = 0
}

func (r *Romulus) maybeCrash() error {
	if r.crashAt == 0 {
		return nil
	}
	r.crashStep++
	if r.crashStep == r.crashAt {
		r.dev.Crash()
		r.inTx = false
		r.log = nil
		return errCrashPointHit
	}
	return nil
}

// transactions ----------------------------------------------------------

// Begin opens a durable transaction.
func (r *Romulus) Begin() error {
	if r.inTx {
		return ErrNestedTx
	}
	if err := r.maybeCrash(); err != nil {
		return err
	}
	if err := r.writeState(stateMutating); err != nil {
		return err
	}
	r.fence() // fence 1
	if err := r.maybeCrash(); err != nil {
		return err
	}
	r.inTx = true
	r.log = r.log[:0]
	return nil
}

// Store writes data at a main-region offset inside a transaction,
// issuing the persistent write-back immediately (the persist<> store
// interposition of §V) and recording the range in the volatile log.
func (r *Romulus) Store(off int, data []byte) error {
	if !r.inTx {
		return ErrNoTransaction
	}
	if off < 0 || off+len(data) > r.regionSize {
		return fmt.Errorf("%w: off=%d len=%d region=%d", ErrBadOffset, off, len(data), r.regionSize)
	}
	if err := r.maybeCrash(); err != nil {
		return err
	}
	if err := r.dev.Store(r.mainStart+off, data); err != nil {
		return err
	}
	r.env.chargeStoreExtra(r.dev, len(data))
	if err := r.flush(r.mainStart+off, len(data)); err != nil {
		return err
	}
	r.log = append(r.log, logEntry{off: off, n: len(data)})
	r.env.chargeLogAppend(r.dev, len(r.log))
	return r.maybeCrash()
}

// Load reads from a main-region offset. Valid inside or outside a
// transaction (reads see in-place mutations).
func (r *Romulus) Load(off int, buf []byte) error {
	if off < 0 || off+len(buf) > r.regionSize {
		return fmt.Errorf("%w: off=%d len=%d region=%d", ErrBadOffset, off, len(buf), r.regionSize)
	}
	return r.dev.Load(r.mainStart+off, buf)
}

// Commit makes the transaction durable and synchronises the back region.
func (r *Romulus) Commit() error {
	if !r.inTx {
		return ErrNoTransaction
	}
	// All mutation write-backs were issued; order them.
	r.fence() // fence 2
	if err := r.maybeCrash(); err != nil {
		return err
	}
	if err := r.writeState(stateCopying); err != nil {
		return err
	}
	r.fence() // fence 3
	if err := r.maybeCrash(); err != nil {
		return err
	}
	// Propagate logged ranges main -> back.
	for _, ent := range r.log {
		if cap(r.copyBuf) < ent.n {
			r.copyBuf = make([]byte, ent.n)
		}
		buf := r.copyBuf[:ent.n]
		if err := r.dev.Load(r.mainStart+ent.off, buf); err != nil {
			return err
		}
		if err := r.dev.Store(r.backStart+ent.off, buf); err != nil {
			return err
		}
		if err := r.flush(r.backStart+ent.off, ent.n); err != nil {
			return err
		}
		if err := r.maybeCrash(); err != nil {
			return err
		}
	}
	r.fence() // fence 4
	if err := r.maybeCrash(); err != nil {
		return err
	}
	if err := r.writeState(stateIdle); err != nil {
		return err
	}
	// The IDLE write-back is ordered by the next transaction's fence.
	r.inTx = false
	r.log = r.log[:0]
	return nil
}

// Abort rolls the transaction back by restoring the logged ranges from
// the back region.
func (r *Romulus) Abort() error {
	if !r.inTx {
		return ErrNoTransaction
	}
	for _, ent := range r.log {
		buf := make([]byte, ent.n)
		if err := r.dev.Load(r.backStart+ent.off, buf); err != nil {
			return err
		}
		if err := r.dev.Store(r.mainStart+ent.off, buf); err != nil {
			return err
		}
		if err := r.flush(r.mainStart+ent.off, ent.n); err != nil {
			return err
		}
	}
	r.fence()
	if err := r.writeState(stateIdle); err != nil {
		return err
	}
	r.fence()
	r.inTx = false
	r.log = r.log[:0]
	if err := r.loadUsed(); err != nil {
		return err
	}
	return nil
}

// Update runs fn inside a transaction, committing on success and
// aborting on error.
func (r *Romulus) Update(fn func() error) error {
	if err := r.Begin(); err != nil {
		return err
	}
	if err := fn(); err != nil {
		if errors.Is(err, errCrashPointHit) {
			return err // device already crashed; nothing to abort
		}
		if abortErr := r.Abort(); abortErr != nil {
			return fmt.Errorf("abort after %v: %w", err, abortErr)
		}
		return err
	}
	return r.Commit()
}

// Recover restores consistency after a crash (paper Algorithm 1 /
// Romulus recovery): MUTATING -> back over main; COPYING -> main over
// back; IDLE -> nothing.
func (r *Romulus) Recover() error {
	state, err := r.readState()
	if err != nil {
		return err
	}
	switch state {
	case stateIdle:
		// Nothing to do.
	case stateMutating:
		if err := r.copyRegion(r.backStart, r.mainStart); err != nil {
			return err
		}
	case stateCopying:
		if err := r.copyRegion(r.mainStart, r.backStart); err != nil {
			return err
		}
	default:
		return fmt.Errorf("%w: state=%d", ErrCorruptHeader, state)
	}
	if err := r.writeState(stateIdle); err != nil {
		return err
	}
	r.fence()
	r.inTx = false
	r.log = r.log[:0]
	return r.loadUsed()
}

func (r *Romulus) copyRegion(src, dst int) error {
	buf := make([]byte, r.regionSize)
	if err := r.dev.Load(src, buf); err != nil {
		return err
	}
	if err := r.dev.Store(dst, buf); err != nil {
		return err
	}
	return r.flush(dst, r.regionSize)
}

// allocator and roots ---------------------------------------------------

// AllocAlign is the heap allocator's alignment: every Alloc consumes
// a multiple of it, so clients that re-lay out regions in place (the
// publication slot GC in package mirror) can predict exact consumption.
const AllocAlign = 8

// Alloc bump-allocates size bytes in the persistent heap inside the
// current transaction and returns the main-region offset. The allocator
// cursor is itself persistent data covered by the twin-copy protocol.
// There is no Free: Plinius allocates its mirror model and data matrix
// once per job (§IV); reclaiming space means reformatting the heap.
func (r *Romulus) Alloc(size int) (int, error) {
	if !r.inTx {
		return 0, ErrNoTransaction
	}
	if size <= 0 {
		return 0, fmt.Errorf("%w: %d", ErrAllocNonPositive, size)
	}
	aligned := (size + AllocAlign - 1) / AllocAlign * AllocAlign
	if r.used+aligned > r.regionSize {
		return 0, fmt.Errorf("%w: used=%d want=%d region=%d", ErrOutOfSpace, r.used, aligned, r.regionSize)
	}
	off := r.used
	newUsed := r.used + aligned
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(newUsed))
	if err := r.Store(usedOffset, buf[:]); err != nil {
		return 0, err
	}
	r.used = newUsed
	return off, nil
}

// SetRoot durably records a root offset (inside a transaction) so
// recovery code can locate persistent structures.
func (r *Romulus) SetRoot(i, off int) error {
	if i < 0 || i >= NumRoots {
		return fmt.Errorf("%w: %d", ErrBadRoot, i)
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(off))
	return r.Store(rootOffset+8*i, buf[:])
}

// Root reads a root offset; zero means unset.
func (r *Romulus) Root(i int) (int, error) {
	if i < 0 || i >= NumRoots {
		return 0, fmt.Errorf("%w: %d", ErrBadRoot, i)
	}
	var buf [8]byte
	if err := r.Load(rootOffset+8*i, buf[:]); err != nil {
		return 0, err
	}
	return int(binary.LittleEndian.Uint64(buf[:])), nil
}

// typed helpers ---------------------------------------------------------

// StoreUint64 stores v at off inside a transaction.
func (r *Romulus) StoreUint64(off int, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return r.Store(off, buf[:])
}

// LoadUint64 loads a uint64 from off.
func (r *Romulus) LoadUint64(off int) (uint64, error) {
	var buf [8]byte
	if err := r.Load(off, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

// RegionSize returns the usable size of the main region.
func (r *Romulus) RegionSize() int { return r.regionSize }

// Used returns the allocator cursor.
func (r *Romulus) Used() int { return r.used }

// Device returns the backing PM device.
func (r *Romulus) Device() *pm.Device { return r.dev }

// InTx reports whether a transaction is open.
func (r *Romulus) InTx() bool { return r.inTx }

// Env returns the environment cost model.
func (r *Romulus) EnvModel() Env { return r.env }
