package romulus

import (
	"time"

	"plinius/internal/pm"
)

// Env models where the Romulus library runs (paper Fig. 6): natively,
// manually ported into an SGX enclave (SGX-Romulus), or unmodified
// inside a SCONE container. The environments differ in how much slower
// stores, write-backs and fences become, and — for SCONE — in the memory
// pressure on the volatile redo log inside the constrained container,
// which collapses throughput for large transactions.
type Env struct {
	Name string
	// StoreMult, FlushMult and FenceMult scale the base PM costs; 1
	// means native speed.
	StoreMult float64
	FlushMult float64
	FenceMult float64
	// LogPressureThreshold is the log length (entries) beyond which each
	// further append pays LogPressureCost (SCONE's limited redo-log
	// space; 0 disables).
	LogPressureThreshold int
	LogPressureCost      time.Duration
}

// NativeEnv is Romulus outside any TEE.
func NativeEnv() Env {
	return Env{Name: "native", StoreMult: 1, FlushMult: 1, FenceMult: 1}
}

// SGXEnv is SGX-Romulus: persistence fences observed 1.6x-3.7x slower
// than native in the paper; write-backs also pay enclave overhead.
func SGXEnv() Env {
	return Env{Name: "sgx-romulus", StoreMult: 1.2, FlushMult: 1.7, FenceMult: 3.0}
}

// SconeEnv is unmodified Romulus in a SCONE container: close to native
// for small transactions, but the redo log competes for the container's
// constrained memory, so appends beyond the threshold become expensive
// and throughput collapses for large transactions (the paper's >64
// swaps/tx regime).
func SconeEnv() Env {
	return Env{
		Name:                 "scone-romulus",
		StoreMult:            1.05,
		FlushMult:            1.15,
		FenceMult:            1.4,
		LogPressureThreshold: 128, // log entries (= 64 swaps x 2 stores)
		LogPressureCost:      100 * time.Nanosecond,
	}
}

// chargeStoreExtra adds the environment's extra store cost for n bytes.
func (e Env) chargeStoreExtra(dev *pm.Device, n int) {
	if e.StoreMult <= 1 {
		return
	}
	lines := (n + pm.CacheLineSize - 1) / pm.CacheLineSize
	base := dev.Profile().Store
	dev.Clock().Advance(time.Duration(float64(lines) * float64(base) * (e.StoreMult - 1)))
}

// chargeLogAppend adds the log memory-pressure cost for the append that
// made the log logLen entries long.
func (e Env) chargeLogAppend(dev *pm.Device, logLen int) {
	if e.LogPressureThreshold <= 0 || logLen <= e.LogPressureThreshold {
		return
	}
	dev.Clock().Advance(e.LogPressureCost)
}
