// Benchmarks regenerating every table and figure of the Plinius paper
// (one benchmark per experiment; see EXPERIMENTS.md for the recorded
// paper-vs-measured comparison and cmd/plinius-bench for the full-size
// sweeps). Custom metrics carry the paper's headline numbers: speed-ups
// as "x", throughput as swaps/µs or GB/s, overheads as ratios.
package plinius_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"plinius/internal/core"
	"plinius/internal/darknet"
	"plinius/internal/experiments"
	"plinius/internal/mnist"
	"plinius/internal/pm"
	"plinius/internal/romulus"
	"plinius/internal/serve"
	"plinius/internal/spot"
	"plinius/internal/storage"
)

// BenchmarkFig2StorageThroughput characterises the three device classes
// (paper Fig. 2). Metric: PM random-write throughput in GB/s and its
// advantage over SSD.
func BenchmarkFig2StorageThroughput(b *testing.B) {
	var pmGBps, ratio float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig2([]int{1, 2, 4, 8}, 64)
		if err != nil {
			b.Fatal(err)
		}
		rows := res.ByDevice["pm-ext4-dax"]
		ssd := res.ByDevice["ssd-ext4"]
		// Index 8..11 = random writes across thread counts (4 patterns
		// x 4 thread counts, pattern-major).
		pmGBps = rows[8].ThroughputGBps
		ratio = rows[8].ThroughputGBps / ssd[8].ThroughputGBps
	}
	b.ReportMetric(pmGBps, "pm-randwrite-GB/s")
	b.ReportMetric(ratio, "pm-vs-ssd-x")
}

// BenchmarkFig6SPS runs the swaps-per-second microbenchmark (paper
// Fig. 6) for the three environments at a large transaction size.
// Metrics: swaps/µs per environment.
func BenchmarkFig6SPS(b *testing.B) {
	run := func(env romulus.Env) float64 {
		dev, err := pm.New(32<<20, pm.WithProfile(pm.RamdiskProfile()))
		if err != nil {
			b.Fatal(err)
		}
		r, err := romulus.Open(dev, romulus.WithEnv(env))
		if err != nil {
			b.Fatal(err)
		}
		res, err := romulus.RunSPS(r, romulus.SPSConfig{
			ArrayBytes: 10 << 20, SwapsPerTx: 512, Transactions: 10, Seed: 42,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res.SwapsPerUs
	}
	var native, sgx, scone float64
	for i := 0; i < b.N; i++ {
		native = run(romulus.NativeEnv())
		sgx = run(romulus.SGXEnv())
		scone = run(romulus.SconeEnv())
	}
	b.ReportMetric(native, "native-swaps/us")
	b.ReportMetric(sgx, "sgx-swaps/us")
	b.ReportMetric(scone, "scone-swaps/us")
}

// BenchmarkFig7SaveRestore compares PM mirroring against SSD
// checkpointing on a mid-size model (paper Fig. 7). Metrics: the
// Table Ib speed-ups.
func BenchmarkFig7SaveRestore(b *testing.B) {
	var saveX, restoreX float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig7(core.SGXEmlPM(), []int{10}, 1, 1)
		if err != nil {
			b.Fatal(err)
		}
		row := res.Rows[0]
		saveX = float64(row.SSDSave.Total()) / float64(row.MirrorSave.Total())
		restoreX = float64(row.SSDRestore.Total()) / float64(row.MirrorRestore.Total())
	}
	b.ReportMetric(saveX, "save-speedup-x")
	b.ReportMetric(restoreX, "restore-speedup-x")
}

// BenchmarkTable1Breakdown measures the mirroring step shares (paper
// Table Ia, below-EPC column, sgx-emlPM).
func BenchmarkTable1Breakdown(b *testing.B) {
	var encryptPct, readPct float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig7(core.SGXEmlPM(), []int{10}, 1, 1)
		if err != nil {
			b.Fatal(err)
		}
		t1a := experiments.ComputeTable1a(res)
		encryptPct = t1a.EncryptBelow
		readPct = t1a.ReadBelow
	}
	b.ReportMetric(encryptPct, "save-encrypt-%")
	b.ReportMetric(readPct, "restore-read-%")
}

// BenchmarkFig8BatchDecrypt measures the encrypted-data overhead (paper
// Fig. 8). Metric: the fetch-path overhead ratio.
func BenchmarkFig8BatchDecrypt(b *testing.B) {
	var overhead float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig8(experiments.Fig8Config{
			BatchSizes: []int{64}, ConvLayers: 2, Filters: 4, Iters: 2,
			DatasetSize: 256, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		overhead = res.Rows[0].FetchOverhead
	}
	b.ReportMetric(overhead, "fetch-overhead-x")
}

// BenchmarkFig9CrashResilience runs the crash/recover training loop
// (paper Fig. 9). Metric: extra iterations the non-resilient baseline
// needed.
func BenchmarkFig9CrashResilience(b *testing.B) {
	var extra float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig9(experiments.Fig9Config{
			Iters: 16, Crashes: 2, ConvLayers: 1, Filters: 4,
			Batch: 16, Dataset: 128, Seed: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		extra = float64(res.NonResilientTotal - len(res.Resilient))
	}
	b.ReportMetric(extra, "non-resilient-extra-iters")
}

// BenchmarkFig10SpotTraining replays a spot trace (paper Fig. 10).
// Metric: interruptions survived by the resilient run.
func BenchmarkFig10SpotTraining(b *testing.B) {
	var interruptions float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig10(experiments.Fig10Config{
			// Two mid-run price spikes above the bid, as in the
			// paper's trace.
			Trace: spot.Trace{Prices: []float64{
				0.05, 0.05, 0.12, 0.05, 0.05, 0.12, 0.05, 0.05, 0.05, 0.05, 0.05, 0.05,
			}},
			TargetIters: 12, ItersPerInterval: 2, ConvLayers: 1,
			Filters: 4, Batch: 16, Dataset: 128, Seed: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Resilient.Completed {
			b.Fatal("resilient run did not complete")
		}
		interruptions = float64(res.Resilient.Interruptions)
	}
	b.ReportMetric(interruptions, "interruptions-survived")
}

// BenchmarkInferenceAccuracy trains and classifies in-enclave (paper
// §VI secure inference). Metric: test accuracy in percent.
func BenchmarkInferenceAccuracy(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunInference(experiments.InferenceConfig{
			ConvLayers: 2, Filters: 8, Batch: 64, Iters: 100,
			Train: 800, Test: 200, Seed: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		acc = 100 * res.Accuracy
	}
	b.ReportMetric(acc, "accuracy-%")
}

// BenchmarkMirrorSaveOnly isolates one mirror-out of a 10 MB model
// (ablation: per-iteration mirroring cost).
func BenchmarkMirrorSaveOnly(b *testing.B) {
	cfgText, err := core.SyntheticModelConfig(10 << 20)
	if err != nil {
		b.Fatal(err)
	}
	f, err := core.New(core.Config{ModelConfig: cfgText, PMBytes: 80 << 20, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := f.MirrorSave(); err != nil { // allocate the mirror
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.MirrorSave(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMirrorRestoreOnly isolates one mirror-in of a 10 MB model.
func BenchmarkMirrorRestoreOnly(b *testing.B) {
	cfgText, err := core.SyntheticModelConfig(10 << 20)
	if err != nil {
		b.Fatal(err)
	}
	f, err := core.New(core.Config{ModelConfig: cfgText, PMBytes: 80 << 20, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := f.MirrorSave(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.MirrorRestore(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSPSFlushKinds compares the PWB flavours (ablation for the
// §V footnote: clwb+sfence vs clflushopt+sfence vs clflush+nop).
func BenchmarkSPSFlushKinds(b *testing.B) {
	run := func(kind pm.FlushKind) float64 {
		dev, err := pm.New(16 << 20)
		if err != nil {
			b.Fatal(err)
		}
		r, err := romulus.Open(dev, romulus.WithFlushKind(kind))
		if err != nil {
			b.Fatal(err)
		}
		res, err := romulus.RunSPS(r, romulus.SPSConfig{
			ArrayBytes: 1 << 20, SwapsPerTx: 64, Transactions: 20, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res.SwapsPerUs
	}
	var clflush, opt, clwb float64
	for i := 0; i < b.N; i++ {
		clflush = run(pm.FlushClflush)
		opt = run(pm.FlushClflushOpt)
		clwb = run(pm.FlushCLWB)
	}
	b.ReportMetric(clflush, "clflush-swaps/us")
	b.ReportMetric(opt, "clflushopt-swaps/us")
	b.ReportMetric(clwb, "clwb-swaps/us")
}

// BenchmarkServeThroughput measures the serving subsystem's
// requests/sec across micro-batch size caps and worker pool sizes (the
// serving perf baseline; metric req/s). Clients submit concurrently so
// the dynamic batcher actually coalesces.
func BenchmarkServeThroughput(b *testing.B) {
	f, err := core.New(core.Config{
		ModelConfig: darknet.MNISTConfig(1, 8, 32),
		PMBytes:     64 << 20,
		Seed:        5,
	})
	if err != nil {
		b.Fatal(err)
	}
	ds := mnist.Synthetic(256, 5)
	if err := f.LoadDataset(ds); err != nil {
		b.Fatal(err)
	}
	if err := f.TrainIters(4, nil); err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		for _, batch := range []int{1, 8, 32} {
			b.Run(fmt.Sprintf("w%d/b%d", workers, batch), func(b *testing.B) {
				s, err := serve.New(context.Background(), f, serve.Options{Workers: workers, MaxBatch: batch})
				if err != nil {
					b.Fatal(err)
				}
				defer s.Close()
				// Enough concurrent clients to fill the largest batch,
				// so big-batch rows are not timer-bound.
				const clients = 32
				b.ResetTimer()
				var wg sync.WaitGroup
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func(c int) {
						defer wg.Done()
						for i := c; i < b.N; i += clients {
							if _, err := s.Classify(context.Background(), ds.Image(i%ds.N)); err != nil {
								b.Error(err)
								return
							}
						}
					}(c)
				}
				wg.Wait()
				b.StopTimer()
				st := s.Stats()
				b.ReportMetric(st.Throughput, "req/s")
				b.ReportMetric(st.AvgBatch, "avg-batch")
			})
		}
	}
}

// BenchmarkFIOGrid exercises the FIO generator itself.
func BenchmarkFIOGrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := storage.Fig2Sweep([]int{1, 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// trainIterationBench runs one-training-iteration-per-op on a conv
// stack big enough that GEMM dominates, under the selected kernels.
// BenchmarkTrainIteration/parallel vs /scalar is the PR-5 acceptance
// number: on a host with GOMAXPROCS >= 4 the blocked multi-core
// kernels deliver >= 2x the scalar reference (results bit-identical —
// see darknet's TestGEMMBitIdenticalToScalar).
func trainIterationBench(b *testing.B, scalar bool) {
	darknet.SetScalarKernels(scalar)
	defer darknet.SetScalarKernels(false)
	const batch, classes = 32, 10
	rng := rand.New(rand.NewSource(17))
	net, err := darknet.NewBuilder(darknet.NetConfig{
		Batch: batch, LearningRate: 0.1, Momentum: 0.9,
		Channels: 1, Height: 28, Width: 28,
	}, rng).
		Conv(darknet.ConvConfig{Filters: 16, Size: 3, Stride: 1, Pad: 1, Activation: darknet.LeakyReLU}).
		MaxPool(2, 2).
		Conv(darknet.ConvConfig{Filters: 32, Size: 3, Stride: 1, Pad: 1, Activation: darknet.LeakyReLU}).
		MaxPool(2, 2).
		Connected(64, darknet.LeakyReLU).
		Connected(classes, darknet.Linear).
		Softmax().
		Build()
	if err != nil {
		b.Fatal(err)
	}
	ds := mnist.Synthetic(batch, 17)
	in := net.InputSize()
	y := make([]float32, batch*classes)
	for s := 0; s < batch; s++ {
		y[s*classes+s%classes] = 1
	}
	// Warm-up grows the per-layer scratch so the timed loop measures
	// steady state.
	if _, err := net.TrainBatch(ds.Images[:batch*in], y, batch); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.TrainBatch(ds.Images[:batch*in], y, batch); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "iters/s")
}

// BenchmarkTrainIteration measures training-iteration throughput with
// the blocked multi-core GEMM kernels (the default) and the scalar
// reference, on the same model and data.
func BenchmarkTrainIteration(b *testing.B) {
	b.Run("parallel", func(b *testing.B) { trainIterationBench(b, false) })
	b.Run("scalar", func(b *testing.B) { trainIterationBench(b, true) })
}
