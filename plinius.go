// Package plinius is the public API of the Plinius reproduction: a
// secure and persistent machine-learning model training framework
// (Yuhala et al., DSN 2021) built from an emulated Intel SGX enclave, an
// emulated persistent-memory device, the SGX-Romulus durable-transaction
// library, the SGX-Darknet CNN framework, and the paper's encrypted
// mirroring mechanism.
//
// Quick start (v2, context-first API):
//
//	f, err := plinius.New(plinius.Config{
//	    ModelConfig: plinius.MNISTConfig(5, 16, 128),
//	})
//	ds := plinius.SyntheticDataset(60000, 42)
//	err = f.LoadDataset(ds)
//
//	// Train until iteration 500 or until ctx is cancelled; a
//	// cancelled run stops at a mirror-consistent boundary, so it is
//	// always recoverable.
//	err = f.Train(ctx, plinius.StopAt(500),
//	    plinius.WithProgress(func(iter int, loss float32) { ... }))
//
// A Framework survives crashes: call Crash to simulate a power failure
// or spot-instance reclamation, Recover to restart the process, and
// training resumes from the last mirrored iteration with the training
// data still byte-addressable in PM.
//
// Serving is built on versioned model publication: Serve publishes the
// current parameters as an immutable snapshot in PM and restores a pool
// of attested enclave replicas from it. Training may continue while the
// server runs; Server.Refresh rolls the pool to the latest published
// version and Server.RotateKey re-provisions the data key, both with
// zero serving downtime:
//
//	srv, err := plinius.Serve(ctx, f, plinius.ServerOptions{Workers: 4})
//	pred, err := srv.Classify(reqCtx, image) // ErrOverloaded when saturated
//	go f.Train(trainCtx)                     // keep training concurrently
//	iter, err := srv.Refresh(ctx)            // serve the newer model
//	ver, err := srv.RotateKey(ctx)           // new data key, no gap
//
// See the examples directory and cmd/plinius-bench for the paper's full
// evaluation.
package plinius

import (
	"context"
	"io"

	"plinius/internal/core"
	"plinius/internal/darknet"
	"plinius/internal/distributed"
	"plinius/internal/enclave"
	"plinius/internal/fleet"
	"plinius/internal/mnist"
	"plinius/internal/obs"
	"plinius/internal/serve"
	"plinius/internal/spot"
)

// Core framework types.
type (
	// Config parameterises a Framework; see the field docs in the
	// underlying type.
	Config = core.Config
	// Framework is a live Plinius instance.
	Framework = core.Framework
	// TrainOption configures one Train run (StopAt, WithProgress,
	// MirrorEvery).
	TrainOption = core.TrainOption
	// ServerProfile bundles one evaluation machine's cost models.
	ServerProfile = core.ServerProfile
	// Host is the unit of EPC ownership: all enclaves on one machine —
	// a framework's training enclave, its serving replicas, co-located
	// frameworks placed there via Config.Host — share its usable-EPC
	// budget, and the paging knee is charged on their joint working
	// set, as on real SGX.
	Host = enclave.Host
	// HostStats counts host-level EPC activity.
	HostStats = enclave.HostStats
	// StepTiming is a save/restore latency breakdown (Fig. 7 bars).
	StepTiming = core.StepTiming
	// SpotTrainer adapts a Framework to the spot simulator.
	SpotTrainer = core.SpotTrainer
	// Dataset is a labelled image set.
	Dataset = mnist.Dataset
	// SpotTrace is a spot-instance price trace.
	SpotTrace = spot.Trace
	// SpotConfig parameterises a spot training simulation.
	SpotConfig = spot.Config
	// SpotResult summarises a spot training simulation.
	SpotResult = spot.Result
)

// Sentinel errors re-exported for matching with errors.Is.
var (
	ErrNoDataset   = core.ErrNoDataset
	ErrCrashedDown = core.ErrCrashedDown
	ErrNotCrashed  = core.ErrNotCrashed
)

// Training options for Framework.Train (the v2 context-first API).
var (
	// StopAt stops the run once the model has completed the given
	// iteration count; without it Train runs until ctx is cancelled.
	StopAt = core.StopAt
	// WithProgress installs a per-iteration loss hook.
	WithProgress = core.WithProgress
	// MirrorEvery overrides the mirror frequency for one run.
	MirrorEvery = core.MirrorEvery
)

// New builds a Framework: enclave creation, remote attestation and key
// provisioning, PM mapping through SGX-Romulus, and enclave model
// construction.
func New(cfg Config) (*Framework, error) { return core.New(cfg) }

// Kernel-parallelism knobs. Training and inference GEMM kernels shard
// output rows across a bounded worker pool; the parallel results are
// bit-identical to the scalar reference, so these only trade speed.
var (
	// SetKernelParallelism bounds the GEMM worker pool (clamped to
	// GOMAXPROCS); n <= 0 restores the default, GOMAXPROCS.
	SetKernelParallelism = darknet.SetKernelParallelism
	// KernelParallelism returns the effective worker bound.
	KernelParallelism = darknet.KernelParallelism
	// SetScalarKernels forces the single-threaded reference kernels,
	// for before/after benchmarking.
	SetScalarKernels = darknet.SetScalarKernels
)

// HostOption configures a Host built with NewHost.
type HostOption = enclave.HostOption

// WithHostEPC overrides a host's usable-EPC budget (default the
// paper's 93.5 MiB) — smaller serving machines, or bigger ice-lake
// class ones.
func WithHostEPC(n int) HostOption { return enclave.WithHostEPC(n) }

// NewHost creates a machine to co-locate frameworks on: every enclave
// created on it (pass the host via Config.Host) shares one usable-EPC
// budget, so jointly overcommitting tenants pay the shared paging knee
// even when each fits alone. Frameworks built without Config.Host get
// a private host — the paper's one-enclave-per-machine setup.
func NewHost(p ServerProfile, opts ...HostOption) *Host {
	return enclave.NewHost(p.Enclave, opts...)
}

// WorkersAuto, as ServerOptions.Workers, sizes the replica pool from
// the EPC headroom remaining on the framework's host.
const WorkersAuto = serve.WorkersAuto

// ShardAuto, as ServerOptions.Shards, pipelines the model across shard
// enclaves whenever a whole-model replica would exceed the host's EPC
// headroom: the model is split into contiguous layer ranges, hot
// ranges are bounded to the headroom, and parked ranges stream back
// from the pinned published snapshot in PM — so an over-EPC model
// serves without dragging the host over the paging knee.
const ShardAuto = serve.ShardAuto

// SGXEmlPM returns the paper's sgx-emlPM server profile (real SGX, PM
// emulated on a ramdisk).
func SGXEmlPM() ServerProfile { return core.SGXEmlPM() }

// EmlSGXPM returns the paper's emlSGX-PM server profile (SGX in
// simulation mode, real Optane PM).
func EmlSGXPM() ServerProfile { return core.EmlSGXPM() }

// MNISTConfig returns the Darknet .cfg text of an n-conv-layer LReLU
// CNN for 28x28 grayscale 10-class inputs — the paper's model family.
func MNISTConfig(convLayers, filters, batch int) string {
	return darknet.MNISTConfig(convLayers, filters, batch)
}

// SyntheticModelConfig returns a model config with approximately the
// given parameter footprint in bytes (the Fig. 7 size sweep).
func SyntheticModelConfig(targetBytes int) (string, error) {
	return core.SyntheticModelConfig(targetBytes)
}

// SyntheticDataset generates n labelled synthetic digit images
// deterministically from seed (the repository's offline stand-in for
// MNIST; ReadIDXDataset accepts real MNIST files).
func SyntheticDataset(n int, seed int64) *Dataset { return mnist.Synthetic(n, seed) }

// ReadIDXDataset reads paired IDX image and label streams (the real
// MNIST file format).
func ReadIDXDataset(images, labels io.Reader) (*Dataset, error) {
	return mnist.ReadIDX(images, labels)
}

// WriteIDXDataset serialises a dataset as paired IDX image and label
// streams (the real MNIST file format).
func WriteIDXDataset(images, labels io.Writer, ds *Dataset) error {
	if err := mnist.WriteIDXImages(images, ds); err != nil {
		return err
	}
	return mnist.WriteIDXLabels(labels, ds)
}

// SyntheticSpotTrace generates a spot price trace with the paper's
// 5-minute interval structure.
func SyntheticSpotTrace(points int, base, volatility float64, seed int64) SpotTrace {
	return spot.Synthetic(points, base, volatility, seed)
}

// ParseSpotTrace reads a "minutes,price" CSV trace.
func ParseSpotTrace(r io.Reader) (SpotTrace, error) { return spot.ParseCSV(r) }

// RunSpot drives a trainer through a price trace, killing and resuming
// it as the market price crosses the bid (Fig. 10).
func RunSpot(t SpotTrace, cfg SpotConfig, tr spot.Trainer) (SpotResult, error) {
	return spot.Run(t, cfg, tr)
}

// Secure inference serving: request-level classification with dynamic
// micro-batching over a pool of enclave worker replicas, each restored
// from an immutable published model snapshot in PM (the production
// shape of the paper's §VI secure-classification experiment).
type (
	// Server is a running secure inference service.
	Server = serve.Server
	// ServerOptions parameterises a Server (workers, batching, queue).
	ServerOptions = serve.Options
	// Prediction is the answer to one classification request.
	Prediction = serve.Prediction
	// ServerStats is a snapshot of a Server's counters.
	ServerStats = serve.Stats
	// Replica is a single enclave inference worker.
	Replica = core.Replica
	// ShardGroup pipelines one model across several shard enclaves,
	// each owning a contiguous layer range (Framework.NewShardGroup).
	ShardGroup = core.ShardGroup
	// ShardOptions parameterises Framework.NewShardGroup.
	ShardOptions = core.ShardOptions
	// ShardRange is a contiguous layer range of a sharded model.
	ShardRange = darknet.ShardRange
	// Precision is a serving parameter precision (FP32 or Int8); see
	// ServerOptions.Quantized and Server.Precision.
	Precision = darknet.Precision
)

// Serving parameter precisions. Int8 is the quantized snapshot variant:
// per-layer symmetric int8 weights published alongside the fp32
// snapshot (Framework.SetPublishQuantized, ServerOptions.Quantized),
// with ~4x smaller sealed payloads and replica EPC footprints.
const (
	FP32 = darknet.FP32
	Int8 = darknet.Int8
)

// Serving errors re-exported for matching with errors.Is.
var (
	ErrServerClosed     = serve.ErrClosed
	ErrBadImage         = serve.ErrBadImage
	ErrOverloaded       = serve.ErrOverloaded
	ErrEPCPressure      = serve.ErrEPCPressure
	ErrNotServable      = serve.ErrNotServable
	ErrNoServableModel  = core.ErrNoServableModel
	ErrShardGroupClosed = core.ErrShardGroupClosed
)

// Multi-host serving fabric: one logical model served across many
// hosts. A placement planner bin-packs the model's shard plan over the
// fleet's EPC headrooms (recording the placement durably, so a
// re-created fleet restores it), attested inter-host channels carry
// sealed activations between shard stages on different hosts, and a
// least-loaded micro-batch router spreads requests over replica
// groups. Use it directly via NewFleet, or let a Server drive it via
// ServerOptions.Fleet / ServerOptions.FleetAuto.
type (
	// Fleet serves one model across many hosts (replica groups of
	// pipelined shard enclaves joined by attested channels).
	Fleet = fleet.Fleet
	// FleetOptions parameterises NewFleet.
	FleetOptions = fleet.Options
	// FleetPlacement is a planned placement: the shared shard plan and
	// each replica group's per-shard host assignment.
	FleetPlacement = fleet.Placement
	// FleetHostReport is one fleet host's placement and load view.
	FleetHostReport = fleet.HostReport
)

// Fleet errors re-exported for matching with errors.Is.
var (
	// ErrInfeasiblePlacement: the model cannot be packed onto the
	// fleet's headrooms with every shard resident, even at the finest
	// layer split.
	ErrInfeasiblePlacement = fleet.ErrInfeasible
	ErrFleetClosed         = fleet.ErrClosed
	// ErrHostDown: a boundary crossing was refused because the enclave's
	// host has been killed; the fleet treats it as a routing failure.
	ErrHostDown = enclave.ErrHostDown
	// ErrFleetUnavailable: no live serving capacity — hosts are down and
	// the survivors hold no groups. Transient; maps to 503 + Retry-After.
	ErrFleetUnavailable = fleet.ErrUnavailable
	// ErrFleetDegraded names the degraded serving state (streaming on
	// survivors after host loss) surfaced in Stats and /healthz.
	ErrFleetDegraded = fleet.ErrDegraded
	// ErrHandoffFault: a sealed hand-off could not be carried through
	// transient channel faults within the bounded retry budget.
	ErrHandoffFault = fleet.ErrHandoffFault
)

// NewFleet plans (or restores) a placement of f's model across the
// fleet's hosts and builds the serving fabric over it, publishing the
// current model first if no snapshot exists yet.
func NewFleet(f *Framework, opts FleetOptions) (*Fleet, error) {
	return fleet.New(f, opts)
}

// Serve publishes f's current model to PM as an immutable versioned
// snapshot and starts an inference server over it: opts.Workers
// attested enclave replicas each restore the pinned version and serve
// dynamic micro-batches. Training may continue concurrently; use
// Server.Refresh to roll the pool to a newer published version and
// Server.RotateKey to re-provision the data key, both without a
// serving gap. ctx bounds construction only.
func Serve(ctx context.Context, f *Framework, opts ServerOptions) (*Server, error) {
	return serve.New(ctx, f, opts)
}

// Observability: every layer of the reproduction (enclave paging, AES
// sealing, PM traffic, mirror transfers, model compute, serving) feeds
// a typed metric registry, and the serving path records per-request
// stage spans with bounded slowest-N retention.
type (
	// MetricsRegistry is a typed registry of counters, gauges and
	// latency histograms; it encodes to the Prometheus text format
	// with WritePrometheus and flattens to a map with obs.Flatten.
	MetricsRegistry = obs.Registry
	// TraceSnapshot is one retained slow request with its per-stage
	// spans (queue, batch, window, per-shard wait/restore/open/
	// compute/seal, deliver).
	TraceSnapshot = obs.TraceSnapshot
	// TraceSpan is one named stage duration of a TraceSnapshot.
	TraceSpan = obs.SpanRec
)

// Metrics returns the process-wide metric registry: the layer-level
// series every Framework, enclave, PM device and mirror in the process
// reports into — enclave_ecalls_total and epc_page_swaps_total by
// enclave role, engine_seal_ops_total, pm_bytes_stored_total,
// mirror_seal_seconds_total, darknet_forward_passes_total, and so on.
// Per-server serving metrics live on Server.Metrics (pass
// ServerOptions.Metrics to aggregate them elsewhere).
func Metrics() *MetricsRegistry { return obs.Default() }

// Distributed training (the paper's §VIII future-work direction):
// synchronous data-parallel training across multiple secure nodes with
// model averaging, each node with its own enclave, PM device and
// crash-durable mirror.
type (
	// Cluster coordinates data-parallel Plinius workers.
	Cluster = distributed.Cluster
	// ClusterConfig parameterises a cluster.
	ClusterConfig = distributed.Config
)

// NewCluster builds a worker per node and shards the dataset.
func NewCluster(cfg ClusterConfig, ds *Dataset) (*Cluster, error) {
	return distributed.NewCluster(cfg, ds)
}
