module plinius

go 1.22
