package plinius_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"plinius"
)

// The root-package tests exercise the public API exactly as a
// downstream user would.

func TestPublicAPITrainAndRecover(t *testing.T) {
	f, err := plinius.New(plinius.Config{
		ModelConfig: plinius.MNISTConfig(1, 4, 16),
		PMBytes:     16 << 20,
		Seed:        1,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := f.LoadDataset(plinius.SyntheticDataset(100, 1)); err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	if err := f.TrainIters(5, nil); err != nil {
		t.Fatalf("Train: %v", err)
	}
	f.Crash()
	if err := f.TrainIters(6, nil); !errors.Is(err, plinius.ErrCrashedDown) {
		t.Fatalf("Train crashed = %v, want ErrCrashedDown", err)
	}
	if err := f.Recover(true); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if f.Iteration() != 5 {
		t.Fatalf("Iteration = %d, want 5", f.Iteration())
	}
}

// TestPublicAPIContextTrainingLifecycle drives the v2 context-first
// surface end to end: option-configured training, cancellation at a
// mirror-consistent boundary, versioned serving with refresh and key
// rotation, and the servability sentinel.
func TestPublicAPIContextTrainingLifecycle(t *testing.T) {
	f, err := plinius.New(plinius.Config{
		ModelConfig: plinius.MNISTConfig(1, 4, 16),
		PMBytes:     32 << 20,
		Seed:        11,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := plinius.Serve(context.Background(), f, plinius.ServerOptions{}); !errors.Is(err, plinius.ErrNotServable) {
		t.Fatalf("Serve on dataset-less framework = %v, want ErrNotServable", err)
	}
	ds := plinius.SyntheticDataset(128, 11)
	if err := f.LoadDataset(ds); err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	var losses int
	err = f.Train(context.Background(), plinius.StopAt(4),
		plinius.WithProgress(func(int, float32) { losses++ }))
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if losses != 4 {
		t.Fatalf("progress hook saw %d iterations, want 4", losses)
	}

	srv, err := plinius.Serve(context.Background(), f, plinius.ServerOptions{Workers: 2})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	if srv.Version() == 0 {
		t.Fatal("served model has no published version")
	}

	// Cancel an open-ended run; recovery lands on the cancelled iteration.
	ctx, cancel := context.WithCancel(context.Background())
	err = f.Train(ctx, plinius.WithProgress(func(iter int, _ float32) {
		if iter >= 8 {
			cancel()
		}
	}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Train = %v, want context.Canceled", err)
	}
	cancelled := f.Iteration()

	// Publish the newer model and roll the pool forward.
	if _, err := f.Publish(); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	iter, err := srv.Refresh(context.Background())
	if err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	if iter != cancelled {
		t.Fatalf("refreshed to iteration %d, want %d", iter, cancelled)
	}
	ver, err := srv.RotateKey(context.Background())
	if err != nil {
		t.Fatalf("RotateKey: %v", err)
	}
	if ver != srv.Version() {
		t.Fatalf("RotateKey version %d, server reports %d", ver, srv.Version())
	}
	if _, err := srv.Classify(context.Background(), ds.Image(0)); err != nil {
		t.Fatalf("Classify after rotation: %v", err)
	}
}

func TestPublicAPIMissingDataset(t *testing.T) {
	f, err := plinius.New(plinius.Config{
		ModelConfig: plinius.MNISTConfig(1, 4, 16),
		PMBytes:     16 << 20,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := f.TrainIters(1, nil); !errors.Is(err, plinius.ErrNoDataset) {
		t.Fatalf("Train = %v, want ErrNoDataset", err)
	}
}

func TestPublicAPIServerProfiles(t *testing.T) {
	a := plinius.SGXEmlPM()
	b := plinius.EmlSGXPM()
	if a.Name == b.Name {
		t.Fatal("server profiles indistinguishable")
	}
	if !a.Enclave.HardwareSGX || b.Enclave.HardwareSGX {
		t.Fatal("SGX hardware flags wrong way around")
	}
}

func TestPublicAPIIDXDataset(t *testing.T) {
	ds := plinius.SyntheticDataset(10, 3)
	var imgs, lbls bytes.Buffer
	if err := plinius.WriteIDXDataset(&imgs, &lbls, ds); err != nil {
		t.Fatalf("WriteIDXDataset: %v", err)
	}
	got, err := plinius.ReadIDXDataset(&imgs, &lbls)
	if err != nil {
		t.Fatalf("ReadIDXDataset: %v", err)
	}
	if got.N != 10 {
		t.Fatalf("N = %d, want 10", got.N)
	}
}

func TestPublicAPISpotSimulation(t *testing.T) {
	trace := plinius.SyntheticSpotTrace(20, 0.09, 0.004, 5)
	if len(trace.Prices) != 20 {
		t.Fatalf("trace has %d points", len(trace.Prices))
	}
	f, err := plinius.New(plinius.Config{
		ModelConfig: plinius.MNISTConfig(1, 4, 16),
		PMBytes:     16 << 20,
		Seed:        5,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := f.LoadDataset(plinius.SyntheticDataset(100, 5)); err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	res, err := plinius.RunSpot(trace, plinius.SpotConfig{
		MaxBid: 10, TargetIters: 4, ItersPerInterval: 2,
	}, &plinius.SpotTrainer{F: f})
	if err != nil {
		t.Fatalf("RunSpot: %v", err)
	}
	if !res.Completed || res.Iterations != 4 {
		t.Fatalf("spot run: completed=%v iters=%d", res.Completed, res.Iterations)
	}
}

func TestPublicAPISyntheticModelConfig(t *testing.T) {
	cfg, err := plinius.SyntheticModelConfig(2 << 20)
	if err != nil {
		t.Fatalf("SyntheticModelConfig: %v", err)
	}
	if cfg == "" {
		t.Fatal("empty config")
	}
}

func TestPublicAPIServe(t *testing.T) {
	f, err := plinius.New(plinius.Config{
		ModelConfig: plinius.MNISTConfig(1, 4, 16),
		PMBytes:     32 << 20,
		Seed:        9,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ds := plinius.SyntheticDataset(128, 9)
	if err := f.LoadDataset(ds); err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	if err := f.TrainIters(4, nil); err != nil {
		t.Fatalf("Train: %v", err)
	}
	srv, err := plinius.Serve(context.Background(), f, plinius.ServerOptions{Workers: 2, MaxBatch: 8})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	pred, err := srv.Classify(context.Background(), ds.Image(0))
	if err != nil {
		t.Fatalf("Classify: %v", err)
	}
	if pred.Class < 0 || pred.Class >= 10 {
		t.Fatalf("implausible class %d", pred.Class)
	}
	want, err := f.Classify(ds.Image(0))
	if err != nil {
		t.Fatalf("sequential Classify: %v", err)
	}
	if pred.Class != want {
		t.Fatalf("served class %d, sequential class %d", pred.Class, want)
	}
	if st := srv.Stats(); st.Requests != 1 {
		t.Fatalf("stats requests = %d, want 1", st.Requests)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := srv.Classify(context.Background(), ds.Image(0)); !errors.Is(err, plinius.ErrServerClosed) {
		t.Fatalf("post-close Classify = %v, want ErrServerClosed", err)
	}
}
