package plinius_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"plinius"
)

// The root-package tests exercise the public API exactly as a
// downstream user would.

func TestPublicAPITrainAndRecover(t *testing.T) {
	f, err := plinius.New(plinius.Config{
		ModelConfig: plinius.MNISTConfig(1, 4, 16),
		PMBytes:     16 << 20,
		Seed:        1,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := f.LoadDataset(plinius.SyntheticDataset(100, 1)); err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	if err := f.Train(5, nil); err != nil {
		t.Fatalf("Train: %v", err)
	}
	f.Crash()
	if err := f.Train(6, nil); !errors.Is(err, plinius.ErrCrashedDown) {
		t.Fatalf("Train crashed = %v, want ErrCrashedDown", err)
	}
	if err := f.Recover(true); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if f.Iteration() != 5 {
		t.Fatalf("Iteration = %d, want 5", f.Iteration())
	}
}

func TestPublicAPIMissingDataset(t *testing.T) {
	f, err := plinius.New(plinius.Config{
		ModelConfig: plinius.MNISTConfig(1, 4, 16),
		PMBytes:     16 << 20,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := f.Train(1, nil); !errors.Is(err, plinius.ErrNoDataset) {
		t.Fatalf("Train = %v, want ErrNoDataset", err)
	}
}

func TestPublicAPIServerProfiles(t *testing.T) {
	a := plinius.SGXEmlPM()
	b := plinius.EmlSGXPM()
	if a.Name == b.Name {
		t.Fatal("server profiles indistinguishable")
	}
	if !a.Enclave.HardwareSGX || b.Enclave.HardwareSGX {
		t.Fatal("SGX hardware flags wrong way around")
	}
}

func TestPublicAPIIDXDataset(t *testing.T) {
	ds := plinius.SyntheticDataset(10, 3)
	var imgs, lbls bytes.Buffer
	if err := plinius.WriteIDXDataset(&imgs, &lbls, ds); err != nil {
		t.Fatalf("WriteIDXDataset: %v", err)
	}
	got, err := plinius.ReadIDXDataset(&imgs, &lbls)
	if err != nil {
		t.Fatalf("ReadIDXDataset: %v", err)
	}
	if got.N != 10 {
		t.Fatalf("N = %d, want 10", got.N)
	}
}

func TestPublicAPISpotSimulation(t *testing.T) {
	trace := plinius.SyntheticSpotTrace(20, 0.09, 0.004, 5)
	if len(trace.Prices) != 20 {
		t.Fatalf("trace has %d points", len(trace.Prices))
	}
	f, err := plinius.New(plinius.Config{
		ModelConfig: plinius.MNISTConfig(1, 4, 16),
		PMBytes:     16 << 20,
		Seed:        5,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := f.LoadDataset(plinius.SyntheticDataset(100, 5)); err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	res, err := plinius.RunSpot(trace, plinius.SpotConfig{
		MaxBid: 10, TargetIters: 4, ItersPerInterval: 2,
	}, &plinius.SpotTrainer{F: f})
	if err != nil {
		t.Fatalf("RunSpot: %v", err)
	}
	if !res.Completed || res.Iterations != 4 {
		t.Fatalf("spot run: completed=%v iters=%d", res.Completed, res.Iterations)
	}
}

func TestPublicAPISyntheticModelConfig(t *testing.T) {
	cfg, err := plinius.SyntheticModelConfig(2 << 20)
	if err != nil {
		t.Fatalf("SyntheticModelConfig: %v", err)
	}
	if cfg == "" {
		t.Fatal("empty config")
	}
}

func TestPublicAPIServe(t *testing.T) {
	f, err := plinius.New(plinius.Config{
		ModelConfig: plinius.MNISTConfig(1, 4, 16),
		PMBytes:     32 << 20,
		Seed:        9,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ds := plinius.SyntheticDataset(128, 9)
	if err := f.LoadDataset(ds); err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	if err := f.Train(4, nil); err != nil {
		t.Fatalf("Train: %v", err)
	}
	srv, err := plinius.Serve(f, plinius.ServerOptions{Workers: 2, MaxBatch: 8})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	pred, err := srv.Classify(context.Background(), ds.Image(0))
	if err != nil {
		t.Fatalf("Classify: %v", err)
	}
	if pred.Class < 0 || pred.Class >= 10 {
		t.Fatalf("implausible class %d", pred.Class)
	}
	want, err := f.Classify(ds.Image(0))
	if err != nil {
		t.Fatalf("sequential Classify: %v", err)
	}
	if pred.Class != want {
		t.Fatalf("served class %d, sequential class %d", pred.Class, want)
	}
	if st := srv.Stats(); st.Requests != 1 {
		t.Fatalf("stats requests = %d, want 1", st.Requests)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := srv.Classify(context.Background(), ds.Image(0)); !errors.Is(err, plinius.ErrServerClosed) {
		t.Fatalf("post-close Classify = %v, want ErrServerClosed", err)
	}
}
